"""The level manifest: which SSTables live at which level.

L0 files may overlap each other and are ordered newest-first (a point
read must consult them in that order). Deeper levels come in two
flavours, chosen per level at construction time by the compaction
*shape* (see ``repro.lsm.strategy``):

* **Leveled** (the default): the level holds one sorted run of
  pairwise-disjoint files kept sorted by smallest key, so a point read
  touches at most one file per level.
* **Run-stacked** (tiering / lazy-leveling): the level holds a stack of
  sorted runs, newest first. Files *within* a run are disjoint and
  key-sorted; *across* runs they may overlap, so a point read probes at
  most one file per run, newest run first.

``check_invariants`` verifies the structural rules of both flavours plus
the LSM consistency guarantee the paper's pinned compaction must
preserve: for any user key, versions are ordered newest-at-the-top
across levels.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.errors import CompactionError
from repro.lsm.sstable import SSTable


class LevelManifest:
    """Mutable mapping of levels to SSTable lists (or run stacks)."""

    def __init__(
        self, num_levels: int, *, run_stacked_levels: Iterable[int] = ()
    ) -> None:
        if num_levels < 2:
            raise ValueError(f"need at least two levels: {num_levels}")
        self._levels: list[list[SSTable]] = [[] for _ in range(num_levels)]
        self._stacked = frozenset(run_stacked_levels)
        for level in self._stacked:
            if not 1 <= level < num_levels:
                raise ValueError(
                    f"run-stacked level out of range: {level} "
                    f"(L0 is always a stack of overlapping files)"
                )
        #: Run stacks for stacked levels, newest run first. The flat
        #: ``_levels`` view is kept in sync (run-major, newest first) so
        #: size/count queries work identically for both flavours.
        self._runs: dict[int, list[list[SSTable]]] = {
            level: [] for level in self._stacked
        }
        #: Optional observer with record_add/record_remove(level, file_id),
        #: used to persist version edits to the MANIFEST log.
        self.observer = None

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def is_run_stacked(self, level: int) -> bool:
        """Whether ``level`` holds a stack of possibly-overlapping runs."""
        return level in self._stacked

    def files(self, level: int) -> list[SSTable]:
        """The file list of a level.

        L0 is newest-first; leveled levels are key-sorted; run-stacked
        levels are run-major with the newest run first.
        """
        return self._levels[level]

    def runs(self, level: int) -> list[list[SSTable]]:
        """The level as a list of sorted runs, newest run first.

        Run-stacked levels return their stack; L0 treats every file as
        its own single-file run (files overlap freely there); a leveled
        level is one run (or none when empty).
        """
        if level in self._stacked:
            return self._runs[level]
        files = self._levels[level]
        if level == 0:
            return [[table] for table in files]
        return [files] if files else []

    def run_count(self, level: int) -> int:
        """Number of sorted runs at ``level`` (L0: the file count)."""
        return len(self.runs(level))

    def all_files(self) -> Iterator[tuple[int, SSTable]]:
        for level, files in enumerate(self._levels):
            for table in files:
                yield level, table

    def file_count(self, level: int | None = None) -> int:
        if level is not None:
            return len(self._levels[level])
        return sum(len(files) for files in self._levels)

    def level_bytes(self, level: int) -> int:
        return sum(table.size_bytes for table in self._levels[level])

    def total_bytes(self) -> int:
        return sum(self.level_bytes(level) for level in range(self.num_levels))

    def level_of(self, table: SSTable) -> int | None:
        for level, files in enumerate(self._levels):
            if table in files:
                return level
        return None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_file(self, level: int, table: SSTable) -> None:
        if level in self._stacked:
            # Each directly-added file forms its own newest run (mirrors
            # L0 semantics; compaction outputs use add_run instead).
            self._runs[level].insert(0, [table])
            self._reflatten(level)
            if self.observer is not None:
                self.observer.record_add(level, table.file_id)
            return
        files = self._levels[level]
        if level == 0:
            files.insert(0, table)  # newest first
            if self.observer is not None:
                self.observer.record_add(level, table.file_id)
            return
        keys = [existing.smallest_key for existing in files]
        pos = bisect.bisect_left(keys, table.smallest_key)
        # Reject overlap with sorted neighbours: the level invariant.
        if pos > 0 and files[pos - 1].largest_key >= table.smallest_key:
            raise CompactionError(
                f"L{level}: new file [{table.smallest_key!r}..{table.largest_key!r}] "
                f"overlaps [{files[pos - 1].smallest_key!r}..{files[pos - 1].largest_key!r}]"
            )
        if pos < len(files) and files[pos].smallest_key <= table.largest_key:
            raise CompactionError(
                f"L{level}: new file [{table.smallest_key!r}..{table.largest_key!r}] "
                f"overlaps [{files[pos].smallest_key!r}..{files[pos].largest_key!r}]"
            )
        files.insert(pos, table)
        if self.observer is not None:
            self.observer.record_add(level, table.file_id)

    def add_run(self, level: int, tables: list[SSTable]) -> None:
        """Push ``tables`` as the newest sorted run of a stacked level.

        The run must be internally key-sorted and pairwise disjoint (a
        compaction output always is); overlap with *other* runs at the
        level is the point of run stacking and is allowed.
        """
        if level not in self._stacked:
            raise CompactionError(
                f"L{level} is leveled; add_run only applies to run-stacked levels"
            )
        if not tables:
            return
        for left, right in zip(tables, tables[1:]):
            if left.largest_key >= right.smallest_key:
                raise CompactionError(
                    f"L{level}: run files {left.file_id} and {right.file_id} "
                    f"out of order or overlapping"
                )
        self._runs[level].insert(0, list(tables))
        self._reflatten(level)
        if self.observer is not None:
            for table in tables:
                self.observer.record_add(level, table.file_id)

    def remove_file(self, level: int, table: SSTable) -> None:
        if level in self._stacked:
            for run in self._runs[level]:
                if table in run:
                    run.remove(table)
                    break
            else:
                raise CompactionError(
                    f"file {table.file_id} not present at L{level}"
                )
            self._runs[level] = [run for run in self._runs[level] if run]
            self._reflatten(level)
            if self.observer is not None:
                self.observer.record_remove(level, table.file_id)
            return
        try:
            self._levels[level].remove(table)
        except ValueError as exc:
            raise CompactionError(
                f"file {table.file_id} not present at L{level}"
            ) from exc
        if self.observer is not None:
            self.observer.record_remove(level, table.file_id)

    def _reflatten(self, level: int) -> None:
        self._levels[level] = [
            table for run in self._runs[level] for table in run
        ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates_for_key(self, level: int, user_key: bytes) -> list[SSTable]:
        """Files at ``level`` that may contain ``user_key``, probe order.

        L0 probes every overlapping file newest-first; a leveled level
        has at most one candidate; a run-stacked level has at most one
        candidate per run, newest run first.
        """
        files = self._levels[level]
        if level == 0:
            return [table for table in files if table.contains_key_range(user_key)]
        if level in self._stacked:
            candidates = []
            for run in self._runs[level]:
                keys = [table.largest_key for table in run]
                pos = bisect.bisect_left(keys, user_key)
                if pos < len(run) and run[pos].contains_key_range(user_key):
                    candidates.append(run[pos])
            return candidates
        keys = [table.largest_key for table in files]
        pos = bisect.bisect_left(keys, user_key)
        if pos < len(files) and files[pos].contains_key_range(user_key):
            return [files[pos]]
        return []

    def overlapping_files(self, level: int, lo: bytes, hi: bytes) -> list[SSTable]:
        """All files at ``level`` intersecting [lo, hi]."""
        return [table for table in self._levels[level] if table.overlaps(lo, hi)]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`CompactionError` on any structural violation."""
        for level in range(1, self.num_levels):
            if level in self._stacked:
                for run in self._runs[level]:
                    self._check_run(level, run)
                continue
            self._check_run(level, self._levels[level], disjoint_required=True)

    @staticmethod
    def _check_run(
        level: int, files: list[SSTable], *, disjoint_required: bool = True
    ) -> None:
        for table in files:
            if table.smallest_key > table.largest_key:
                raise CompactionError(
                    f"L{level} file {table.file_id} has inverted key range"
                )
        for left, right in zip(files, files[1:]):
            if left.smallest_key > right.smallest_key:
                raise CompactionError(f"L{level} files out of order")
            if disjoint_required and left.largest_key >= right.smallest_key:
                raise CompactionError(
                    f"L{level} files {left.file_id} and {right.file_id} overlap"
                )
