"""Data block encoding.

An SSTable's payload is a sequence of ~4 KB *data blocks*, each holding a
run of records in internal-key order. Blocks are the unit of device I/O
and of block-cache residency — the granularity mismatch between 4 KB
blocks and ~100 B objects is central to the paper's caching analysis
(§3.3), so blocks here are real serialized byte strings, not lists.

Wire format (v2, LevelDB-style restart trailer)::

    record[0] .. record[count-1]      # concatenated Record encodings
    u32 offset[0] .. offset[count-1]  # byte offset of each record
    u16 count

The restart-point offset array lets a point read *binary-search the
encoded buffer* and decode only the one candidate record, instead of
materializing every record in the block. :class:`DataBlock` is the
decoded-side handle: it parses the trailer once (cheap — a single struct
call) and then serves lazy point searches; the full record list is only
built on demand (scans, compactions) and memoized. The block cache keeps
``DataBlock`` objects alongside the raw bytes so a cache hit never
re-parses anything.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptionError
from repro.lsm.record import MAX_SEQNO, Record

_COUNT = struct.Struct("<H")
_OFFSET = struct.Struct("<I")
_KEY_LEN = struct.Struct("<H")
#: Record header layout (key_len, value_len, kind, seqno); mirrored from
#: :mod:`repro.lsm.record` so key peeks avoid building Record objects.
_REC_HEADER = struct.Struct("<HIBQ")
#: Fixed bytes each record adds to a block beyond its key and value.
_PER_RECORD = _REC_HEADER.size + _OFFSET.size


class DataBlockBuilder:
    """Accumulates records (already in internal-key order) into one block.

    Contents are kept *encoded*: :meth:`add` serializes the record
    immediately, and :meth:`add_span` accepts a pre-encoded record as a
    ``[start, end)`` span of some source buffer — the encoded-domain
    compaction path, where merge inputs are re-emitted without ever
    materializing Record objects. Adjacent spans over the same buffer are
    coalesced in place, so a run of records copied from one input block
    becomes a single slice in the final ``bytes.join``. Both entry points
    produce byte-identical blocks because the wire encoding of a record
    is a pure function of its fields.
    """

    __slots__ = (
        "target_bytes", "_parts", "_offsets", "_position",
        "_estimated", "_first_key", "_last_key", "_last_inv",
    )

    def __init__(self, target_bytes: int) -> None:
        if target_bytes <= 0:
            raise ValueError(f"target_bytes must be positive: {target_bytes}")
        self.target_bytes = target_bytes
        #: Encoded content: ``bytes`` entries (from :meth:`add`) mixed
        #: with mutable ``[buf, start, end]`` span entries (from
        #: :meth:`add_span`; mutable so a contiguous follow-up span can
        #: extend ``end`` in place instead of appending).
        self._parts: list = []
        self._offsets: list[int] = []
        self._position = 0
        # Size is maintained incrementally (payload + one u32 restart
        # offset per record + the count trailer), and the order check
        # keeps the previous (key, inverted-seqno) pair instead of
        # building two sort-key tuples per add.
        self._estimated = _COUNT.size
        self._first_key: bytes | None = None
        self._last_key: bytes | None = None
        self._last_inv = 0

    def __len__(self) -> int:
        return len(self._offsets)

    @property
    def estimated_bytes(self) -> int:
        return self._estimated

    def add(self, record: Record) -> None:
        key = record.user_key
        inv = MAX_SEQNO - record.seqno
        last_key = self._last_key
        if last_key is not None and (
            key < last_key or (key == last_key and inv <= self._last_inv)
        ):
            raise ValueError(
                f"records out of order: {key!r}@{record.seqno} "
                f"after {last_key!r}@{MAX_SEQNO - self._last_inv}"
            )
        if self._first_key is None:
            self._first_key = key
        self._last_key = key
        self._last_inv = inv
        encoded = record.encode()
        self._offsets.append(self._position)
        self._parts.append(encoded)
        self._position += len(encoded)
        self._estimated += _OFFSET.size + len(encoded)

    def add_span(self, key: bytes, seqno: int, buf, start: int, end: int) -> None:
        """Append one record already encoded at ``buf[start:end]``.

        The caller (the encoded compaction merge) guarantees internal-key
        order, so no order check runs; the (key, inverted-seqno) cursor
        is still advanced so interleaved :meth:`add` calls stay safe.
        """
        if self._first_key is None:
            self._first_key = key
        self._last_key = key
        self._last_inv = MAX_SEQNO - seqno
        self._offsets.append(self._position)
        parts = self._parts
        if parts:
            tail = parts[-1]
            if type(tail) is list and tail[0] is buf and tail[2] == start:
                tail[2] = end
            else:
                parts.append([buf, start, end])
        else:
            parts.append([buf, start, end])
        self._position += end - start
        self._estimated += _OFFSET.size + (end - start)

    def is_full(self) -> bool:
        return self._estimated >= self.target_bytes

    @property
    def first_key(self) -> bytes | None:
        return self._first_key

    @property
    def last_key(self) -> bytes | None:
        return self._last_key

    def finish(self) -> bytes:
        """Serialize and reset the builder."""
        count = len(self._offsets)
        if count > 0xFFFF:
            raise ValueError(f"too many records in one block: {count}")
        parts: list = []
        for part in self._parts:
            parts.append(part if type(part) is bytes else part[0][part[1]:part[2]])
        if count:
            parts.append(struct.pack(f"<{count}I", *self._offsets))
        parts.append(_COUNT.pack(count))
        self._parts = []
        self._offsets = []
        self._position = 0
        self._estimated = _COUNT.size
        self._first_key = None
        self._last_key = None
        self._last_inv = 0
        return b"".join(parts)


class DataBlock:
    """Decoded-side handle over one serialized data block.

    Construction parses only the restart trailer (count + offset array).
    Point lookups binary-search the *encoded* records through the offset
    array, peeking at keys via header reads, and decode exactly one
    candidate record. :meth:`records` materializes the full list for
    sequential consumers and memoizes it, so a block used by both the
    point-read and scan paths parses each representation at most once.
    """

    __slots__ = ("buf", "count", "offsets", "records_end", "_records", "_peeked")

    def __init__(self, buf: bytes | memoryview) -> None:
        if len(buf) < _COUNT.size:
            raise CorruptionError("truncated data block")
        (count,) = _COUNT.unpack_from(buf, len(buf) - _COUNT.size)
        trailer = _COUNT.size + count * _OFFSET.size
        if len(buf) < trailer:
            raise CorruptionError(
                f"truncated restart array: {count} records, {len(buf)} bytes"
            )
        records_end = len(buf) - trailer
        offsets = struct.unpack_from(f"<{count}I", buf, records_end)
        if count and (offsets[0] != 0 or offsets[-1] >= records_end):
            raise CorruptionError(f"restart offsets out of range: {offsets[:4]}...")
        self.buf = buf
        self.count = count
        self.offsets = offsets
        self.records_end = records_end
        self._records: list[Record] | None = None
        #: index -> user key, filled by binary-search peeks. Repeated
        #: point searches of a hot cached block revisit the same probe
        #: positions (the midpoints are a function of ``count`` alone),
        #: so memoizing them turns the steady-state search into pure
        #: dict hits — and makes memoryview-backed blocks (which would
        #: otherwise pay a bytes() per peek) as fast as bytes-backed.
        self._peeked: dict[int, bytes] = {}

    def __len__(self) -> int:
        return self.count

    def _key_at(self, index: int) -> bytes:
        """The user key of record ``index``, without building a Record."""
        key = self._peeked.get(index)
        if key is not None:
            return key
        offset = self.offsets[index]
        if offset + _REC_HEADER.size > self.records_end:
            raise CorruptionError(f"truncated record header at offset {offset}")
        (key_len,) = _KEY_LEN.unpack_from(self.buf, offset)
        start = offset + _REC_HEADER.size
        key = self.buf[start : start + key_len]
        if len(key) != key_len:
            raise CorruptionError(f"truncated record key at offset {offset}")
        if type(key) is not bytes:
            key = bytes(key)
        self._peeked[index] = key
        return key

    def search(self, user_key: bytes) -> Record | None:
        """Newest record for ``user_key``, decoding only the candidate.

        Records are in internal order (key asc, seqno desc), so the first
        record at-or-after ``user_key`` is the newest version if the keys
        match. When the record list is already materialized the search
        runs over it directly (no byte peeks).
        """
        records = self._records
        if records is not None:
            return search_block(records, user_key)
        key_at = self._key_at
        lo, hi = 0, self.count
        while lo < hi:
            mid = (lo + hi) // 2
            if key_at(mid) < user_key:
                lo = mid + 1
            else:
                hi = mid
        if lo < self.count and key_at(lo) == user_key:
            record, _ = Record.decode_from(self.buf, self.offsets[lo])
            return record
        return None

    def records(self) -> list[Record]:
        """The full decoded record list (memoized)."""
        records = self._records
        if records is None:
            buf = self.buf
            if type(buf) is not bytes:
                # Bulk decode slices two fields per record; against a
                # memoryview each slice would pay an extra allocation.
                # One flat bytes() of the block is cheaper than ~80
                # small conversions and happens at most once per block.
                buf = bytes(buf)
            records = []
            offset = 0
            decode_from = Record.decode_from
            for index in range(self.count):
                if offset != self.offsets[index]:
                    raise CorruptionError(
                        f"restart offset mismatch at record {index}: "
                        f"{self.offsets[index]} != {offset}"
                    )
                record, offset = decode_from(buf, offset)
                records.append(record)
            if offset != self.records_end:
                raise CorruptionError(
                    f"trailing garbage in data block: {self.records_end - offset} bytes"
                )
            self._records = records
        return records


def decode_block(buf: bytes) -> list[Record]:
    """Parse a serialized data block back into its record list."""
    return DataBlock(buf).records()


def extend_records_from(
    buf: bytes, base: int, length: int, out: list[Record]
) -> None:
    """Append all records of the block at ``buf[base : base + length]``.

    The zero-copy bulk path for compaction input scans: the caller hands
    the *whole file's* bytes plus the block's index-entry coordinates,
    and records are decoded in place — no per-block slice, no offset
    array parse (a sequential walk needs only the count; the end-position
    check below still catches any framing mismatch).
    """
    end = base + length
    if length < _COUNT.size or end > len(buf):
        raise CorruptionError("truncated data block")
    (count,) = _COUNT.unpack_from(buf, end - _COUNT.size)
    records_end = end - _COUNT.size - count * _OFFSET.size
    if records_end < base:
        raise CorruptionError(
            f"truncated restart array: {count} records, {length} bytes"
        )
    offset = base
    decode_from = Record.decode_from
    append = out.append
    for _ in range(count):
        record, offset = decode_from(buf, offset)
        append(record)
    if offset != records_end:
        raise CorruptionError(
            f"trailing garbage in data block: {records_end - offset} bytes"
        )


def extend_spans_from(
    buf,
    base: int,
    length: int,
    keys: list[bytes],
    seqnos: list[int],
    kinds: list[int],
    starts: list[int],
    ends: list[int],
) -> int:
    """Append each record of a block as parallel arrays of encoded spans.

    The encoded-domain counterpart of :func:`extend_records_from`: walks
    the block at ``buf[base : base + length]`` and appends, per record,
    its user key (always real ``bytes``, so key comparisons work), its
    seqno and wire kind code, and the ``[start, end)`` byte span of the
    record's full encoding within ``buf`` — enough for a merge to order,
    shadow, route, and re-emit records as slices without ever building a
    :class:`Record`. Returns the number of records appended.
    """
    end_of_block = base + length
    if length < _COUNT.size or end_of_block > len(buf):
        raise CorruptionError("truncated data block")
    (count,) = _COUNT.unpack_from(buf, end_of_block - _COUNT.size)
    records_end = end_of_block - _COUNT.size - count * _OFFSET.size
    if records_end < base:
        raise CorruptionError(
            f"truncated restart array: {count} records, {length} bytes"
        )
    unpack_header = _REC_HEADER.unpack_from
    header_size = _REC_HEADER.size
    # Bound methods and a hoisted buffer-type check: this loop runs once
    # per record of every compaction input, so per-iteration attribute
    # lookups are measurable against the little real work it does.
    keys_append = keys.append
    seqnos_append = seqnos.append
    kinds_append = kinds.append
    starts_append = starts.append
    ends_append = ends.append
    raw_bytes = type(buf) is bytes
    offset = base
    for _ in range(count):
        if offset + header_size > records_end:
            raise CorruptionError(f"truncated record header at offset {offset}")
        key_len, value_len, kind, seqno = unpack_header(buf, offset)
        if kind > 1:
            raise CorruptionError(f"bad record kind {kind} at offset {offset}")
        if seqno > MAX_SEQNO:
            raise CorruptionError(f"seqno out of range at offset {offset}: {seqno}")
        start = offset
        key_start = offset + header_size
        key_end = key_start + key_len
        offset = key_end + value_len
        if offset > records_end:
            raise CorruptionError(f"truncated record body at offset {start}")
        key = buf[key_start:key_end]
        if not raw_bytes:
            key = bytes(key)
        keys_append(key)
        seqnos_append(seqno)
        kinds_append(kind)
        starts_append(start)
        ends_append(offset)
    if offset != records_end:
        raise CorruptionError(
            f"trailing garbage in data block: {records_end - offset} bytes"
        )
    return count


def search_block(records: list[Record], user_key: bytes) -> Record | None:
    """Find the newest record for ``user_key`` in a decoded record list.

    Records are in internal order (key asc, seqno desc), so the first
    match by user key is the newest version within the block.
    """
    lo, hi = 0, len(records)
    while lo < hi:
        mid = (lo + hi) // 2
        if records[mid].user_key < user_key:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(records) and records[lo].user_key == user_key:
        return records[lo]
    return None
