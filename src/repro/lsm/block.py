"""Data block encoding.

An SSTable's payload is a sequence of ~4 KB *data blocks*, each holding a
run of records in internal-key order. Blocks are the unit of device I/O
and of block-cache residency — the granularity mismatch between 4 KB
blocks and ~100 B objects is central to the paper's caching analysis
(§3.3), so blocks here are real serialized byte strings, not lists.
"""

from __future__ import annotations

import bisect
import struct

from repro.errors import CorruptionError
from repro.lsm.record import Record

_COUNT = struct.Struct("<H")


class DataBlockBuilder:
    """Accumulates records (already in internal-key order) into one block."""

    def __init__(self, target_bytes: int) -> None:
        if target_bytes <= 0:
            raise ValueError(f"target_bytes must be positive: {target_bytes}")
        self.target_bytes = target_bytes
        self._records: list[Record] = []
        self._payload_bytes = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def estimated_bytes(self) -> int:
        return _COUNT.size + self._payload_bytes

    def add(self, record: Record) -> None:
        if self._records:
            prev = self._records[-1]
            if record.internal_sort_key() <= prev.internal_sort_key():
                raise ValueError(
                    f"records out of order: {record.user_key!r}@{record.seqno} "
                    f"after {prev.user_key!r}@{prev.seqno}"
                )
        self._records.append(record)
        self._payload_bytes += record.encoded_size()

    def is_full(self) -> bool:
        return self.estimated_bytes >= self.target_bytes

    @property
    def first_key(self) -> bytes | None:
        return self._records[0].user_key if self._records else None

    @property
    def last_key(self) -> bytes | None:
        return self._records[-1].user_key if self._records else None

    def finish(self) -> bytes:
        """Serialize and reset the builder."""
        if len(self._records) > 0xFFFF:
            raise ValueError(f"too many records in one block: {len(self._records)}")
        parts = [_COUNT.pack(len(self._records))]
        parts.extend(record.encode() for record in self._records)
        self._records = []
        self._payload_bytes = 0
        return b"".join(parts)


def decode_block(buf: bytes) -> list[Record]:
    """Parse a serialized data block back into its record list."""
    if len(buf) < _COUNT.size:
        raise CorruptionError("truncated data block")
    (count,) = _COUNT.unpack_from(buf, 0)
    records: list[Record] = []
    offset = _COUNT.size
    for _ in range(count):
        record, offset = Record.decode_from(buf, offset)
        records.append(record)
    if offset != len(buf):
        raise CorruptionError(f"trailing garbage in data block: {len(buf) - offset} bytes")
    return records


def search_block(records: list[Record], user_key: bytes) -> Record | None:
    """Find the newest record for ``user_key`` in a decoded block.

    Records are in internal order (key asc, seqno desc), so the first
    match by user key is the newest version within the block.
    """
    keys = [record.user_key for record in records]
    idx = bisect.bisect_left(keys, user_key)
    if idx < len(records) and records[idx].user_key == user_key:
        return records[idx]
    return None
