"""The DRAM block cache.

Caches whole SST blocks (data, index, and filter) under LRU, exactly the
granularity the paper analyzes: caching 4 KB blocks of ~100 B objects
means a block's cache-worthiness is set by its *most popular* residents,
which is why PrismDB's hot-cold separation raises hit rates (Table 4).

Hits are charged a DRAM access; misses fall through to the loader (which
charges device I/O) and insert the block. Per-type hit/miss counters feed
the Table 4 reproduction.

Each entry carries the raw block bytes *and*, on demand, the decoded
object parsed from them (a :class:`~repro.lsm.block.DataBlock`, an index
entry list, a constructed bloom filter). A cache hit therefore never
re-parses — the wall-clock cost that used to dominate the Python read
path — while the *simulated* accounting is untouched: capacity, LRU
order, eviction, and the charged DRAM latency are all still computed
from the raw byte size alone, so simulated results are bit-identical to
the bytes-only cache.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.storage.device import DRAM_SPEC

T = TypeVar("T")


class BlockType(enum.Enum):
    DATA = "data"
    INDEX = "index"
    FILTER = "filter"


class _Entry:
    """One cached block: raw bytes plus the lazily parsed decoded form."""

    __slots__ = ("data", "decoded")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.decoded: object | None = None


@dataclass
class CacheStats:
    """Hit/miss accounting, overall and per block type."""

    hits: dict[BlockType, int] = field(default_factory=dict)
    misses: dict[BlockType, int] = field(default_factory=dict)
    insertions: int = 0
    evictions: int = 0

    def record_hit(self, block_type: BlockType) -> None:
        self.hits[block_type] = self.hits.get(block_type, 0) + 1

    def record_miss(self, block_type: BlockType) -> None:
        self.misses[block_type] = self.misses.get(block_type, 0) + 1

    def hit_rate(self, block_type: BlockType | None = None) -> float:
        """Hit rate for one block type, or across all types when None."""
        if block_type is None:
            hits = sum(self.hits.values())
            misses = sum(self.misses.values())
        else:
            hits = self.hits.get(block_type, 0)
            misses = self.misses.get(block_type, 0)
        total = hits + misses
        return hits / total if total else 0.0


class BlockCache:
    """Byte-capacity-bounded LRU cache over (file_id, offset) block keys.

    A capacity of zero disables caching entirely (the Fig. 13 "DRAM
    caching disabled" configuration): every lookup is a miss and nothing
    is retained.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be non-negative: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[int, int], _Entry] = OrderedDict()
        self._file_index: dict[int, set[tuple[int, int]]] = {}
        self._used_bytes = 0
        self._obs_hits: dict[BlockType, object] | None = None
        self._obs_misses: dict[BlockType, object] | None = None

    def bind_observability(self, registry) -> None:
        """Mirror hit/miss accounting into ``registry`` (cache.* series)."""
        self._obs_hits = {
            bt: registry.counter("cache.hits", type=bt.value) for bt in BlockType
        }
        self._obs_misses = {
            bt: registry.counter("cache.misses", type=bt.value) for bt in BlockType
        }

    def record_resident_hit(self, block_type: BlockType) -> None:
        """Count a hit served from table-resident memory (filter/index).

        SSTables keep their filter and index blocks resident after first
        load (RocksDB's table cache); those accesses are DRAM hits and
        are accounted here so "hits + misses == every block lookup"
        holds as a conservation invariant.
        """
        self.stats.record_hit(block_type)
        if self._obs_hits is not None:
            self._obs_hits[block_type].inc()

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def _record_hit(self, block_type: BlockType) -> None:
        self.stats.record_hit(block_type)
        if self._obs_hits is not None:
            self._obs_hits[block_type].inc()

    def _record_miss(self, block_type: BlockType) -> None:
        self.stats.record_miss(block_type)
        if self._obs_misses is not None:
            self._obs_misses[block_type].inc()

    def get_or_load(
        self,
        file_id: int,
        offset: int,
        block_type: BlockType,
        loader: Callable[[], tuple[bytes, float]],
        ctx=None,
    ) -> tuple[bytes, float]:
        """Return (block bytes, simulated latency).

        On a hit the latency is one DRAM access for the block size; on a
        miss it is whatever the loader charges (device I/O) and the block
        is inserted. ``ctx`` (an
        :class:`~repro.obs.attribution.OpContext`) attributes hits to
        ``(block type, dram)``; on a miss the block type is handed to the
        loader's device via ``ctx.component``.
        """
        key = (file_id, offset)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._record_hit(block_type)
            latency = DRAM_SPEC.read_time_usec(len(entry.data))
            if ctx is not None:
                ctx.add(block_type.value, "dram", latency)
            return entry.data, latency
        self._record_miss(block_type)
        if ctx is not None:
            ctx.component = block_type.value
        data, latency = loader()
        self._insert(key, data)
        return data, latency

    def get_or_load_decoded(
        self,
        file_id: int,
        offset: int,
        block_type: BlockType,
        loader: Callable[[], tuple[bytes, float]],
        decoder: Callable[[bytes], T],
        ctx=None,
    ) -> tuple[T, float]:
        """Return (decoded block object, simulated latency).

        Identical accounting to :meth:`get_or_load` — hits charge one
        DRAM access for the *raw* block size, misses charge the loader —
        but the parsed object is memoized on the entry, so repeated hits
        pay zero re-parsing wall-clock. The decoded form rides along with
        the raw bytes: evicting or invalidating the entry drops both.
        """
        key = (file_id, offset)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._record_hit(block_type)
            decoded = entry.decoded
            if decoded is None:
                decoded = entry.decoded = decoder(entry.data)
            latency = DRAM_SPEC.read_time_usec(len(entry.data))
            if ctx is not None:
                ctx.add(block_type.value, "dram", latency)
            return decoded, latency
        self._record_miss(block_type)
        if ctx is not None:
            ctx.component = block_type.value
        data, latency = loader()
        decoded = decoder(data)
        inserted = self._insert(key, data)
        if inserted is not None:
            inserted.decoded = decoded
        return decoded, latency

    def _insert(self, key: tuple[int, int], data: bytes) -> _Entry | None:
        if self.capacity_bytes == 0 or len(data) > self.capacity_bytes:
            return None
        if key in self._entries:
            self._used_bytes -= len(self._entries[key].data)
            self._entries.move_to_end(key)
        entry = _Entry(data)
        self._entries[key] = entry
        self._file_index.setdefault(key[0], set()).add(key)
        self._used_bytes += len(data)
        self.stats.insertions += 1
        while self._used_bytes > self.capacity_bytes:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._used_bytes -= len(evicted.data)
            self._forget(evicted_key)
            self.stats.evictions += 1
            if evicted is entry:
                return None
        return entry

    def _forget(self, key: tuple[int, int]) -> None:
        keys = self._file_index.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._file_index[key[0]]

    def invalidate_file(self, file_id: int) -> int:
        """Drop all blocks of a deleted file; returns count removed."""
        doomed = self._file_index.pop(file_id, set())
        for key in doomed:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._used_bytes -= len(entry.data)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._file_index.clear()
        self._used_bytes = 0
