"""Observability: the metrics registry and the simulated-clock tracer.

``repro.obs`` is the substrate every layer reports into:

* :class:`MetricsRegistry` — named counters/gauges/histograms with
  labeled dimensions (``tier``, ``level``, ``op``, ``source``, ...),
  snapshot once per run; per-tier I/O accounting and the Fig. 10 latency
  breakdown are derived from it alone.
* :class:`Tracer` — ``with tracer.span("compaction", tier="tlc"): ...``
  spans stamped with *simulated* time, emitted as chrome-trace events
  (JSONL on disk, loadable in chrome://tracing / Perfetto).
* :class:`LatencyAttribution` / :class:`OpContext` — request-scoped
  latency provenance: every sampled operation carries a breakdown of its
  simulated latency by ``(component, tier)``, aggregated per percentile
  band and persisted in run artifacts (``repro-bench explain``).

See ``docs/OBSERVABILITY.md`` for the naming scheme, the trace schema
and worked examples.
"""

from repro.obs.attribution import (
    BAND_LABELS,
    BANDS,
    LatencyAttribution,
    OpContext,
    attribution_table,
    band_breakdown,
    diff_attribution,
    merge_attributions,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    format_series,
    label_key,
    percentile_from_buckets,
)
from repro.obs.timeline import TimelineSampler, merge_timelines, timeline_series
from repro.obs.tracing import (
    NOOP_TRACER,
    Tracer,
    jsonl_to_chrome_json,
    read_jsonl,
)

__all__ = [
    "BANDS",
    "BAND_LABELS",
    "LatencyAttribution",
    "OpContext",
    "attribution_table",
    "band_breakdown",
    "diff_attribution",
    "merge_attributions",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "exponential_buckets",
    "format_series",
    "label_key",
    "percentile_from_buckets",
    "TimelineSampler",
    "merge_timelines",
    "timeline_series",
    "Tracer",
    "NOOP_TRACER",
    "jsonl_to_chrome_json",
    "read_jsonl",
]
