"""Per-request latency provenance: where did *this* operation's time go?

The aggregate views (metrics registry, Fig. 10 breakdown) answer "where
does latency go on average"; this module answers the tail question the
paper's headline claims hinge on — *which component made this p99 read
slow*. Three pieces:

* :class:`OpContext` — a request-scoped accumulator threaded from the
  harness through ``LsmDB.get/put/scan`` into the row cache, memtable,
  block cache, WAL and per-tier device models. Every simulated
  microsecond an operation is charged is also attributed to one
  ``(component, tier)`` bucket; the context never *adds* latency, so
  runs with attribution enabled are bit-identical to runs without.
* :class:`LatencyAttribution` — the per-run aggregator: per op type and
  latency bucket it keeps the summed breakdown (bounded memory), retains
  a worst-K slow-op log with the full event list plus an LSM state
  snapshot, and keeps K exemplar ops via a seeded reservoir (keyed off
  the run seed through :func:`~repro.common.rng.make_rng`, never wall
  clock — sampling is deterministic).
* Band/diff helpers — :func:`band_breakdown` folds the bucket cells into
  percentile bands (<=p50 / p50-p90 / p90-p99 / >=p99) and
  :func:`diff_attribution` decomposes the delta between two runs into
  per-component contributions ("the p99 delta is 83% flash block
  reads"). Because every charged microsecond lands in exactly one
  bucket, the decomposition is exact: component deltas sum to the total.

Component names: ``cpu``, ``memtable``, ``rowcache``, ``filter`` /
``index`` / ``data`` (block fetches, tier ``dram`` on cache or resident
hits, else the device tier), ``wal``, ``tracker`` (PrismDB),
``compact_wait`` (the device queueing penalty behind background
compaction/migration backlog), ``migration_stall`` (Mutant's file-lock
stalls) and ``other`` for any residual.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.common.rng import make_rng
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS

#: Percentile bands reported by :func:`band_breakdown`, tail-last. Band
#: edges are rank fractions; a latency bucket straddling an edge is split
#: fractionally (its samples are exchangeable once aggregated).
BANDS = ("p50", "p50_p90", "p90_p99", "p99")
BAND_LABELS = {
    "p50": "<=p50",
    "p50_p90": "p50-p90",
    "p90_p99": "p90-p99",
    "p99": ">=p99",
}
_BAND_EDGES = (0.0, 0.50, 0.90, 0.99, 1.0)

#: Component charged with whatever part of an op's latency no layer
#: attributed explicitly (float association noise; ideally ~0).
RESIDUAL_KEY = "other/-"


class OpContext:
    """Latency breakdown of one in-flight operation.

    Layers call :meth:`add` with the microseconds they just charged.
    ``component`` is a mutable hand-off slot: the block cache sets it to
    the block type before invoking a device loader, so the device — which
    only knows its tier — can attribute the I/O to the right component.
    ``scope`` labels events with the probe site (e.g. ``L3:f17``) so the
    slow-op log reads as a span tree.
    """

    __slots__ = ("op", "component", "scope", "parts", "events", "probes")

    def __init__(self, op: str) -> None:
        self.op = op
        self.component = "io"
        self.scope = ""
        #: ``"component/tier" -> usec`` accumulated charges.
        self.parts: dict[str, float] = {}
        #: ``(scope, component, tier, usec)`` in charge order.
        self.events: list[tuple[str, str, str, float]] = []
        #: Side counters (bloom probe outcomes), not latency.
        self.probes: dict[str, int] = {}

    def add(self, component: str, tier: str, usec: float) -> None:
        """Attribute ``usec`` of this op's latency to ``(component, tier)``."""
        key = component + "/" + tier
        parts = self.parts
        parts[key] = parts.get(key, 0.0) + usec
        self.events.append((self.scope, component, tier, usec))

    def note_probe(self, positive: bool, *, n_probes: int = 0) -> None:
        """Count a bloom probe outcome (no latency; the filter fetch is
        attributed separately as the ``filter`` component)."""
        probes = self.probes
        probes["bloom"] = probes.get("bloom", 0) + 1
        if not positive:
            probes["bloom_negative"] = probes.get("bloom_negative", 0) + 1
        if n_probes:
            probes["bloom_hashes"] = probes.get("bloom_hashes", 0) + n_probes

    @property
    def attributed_usec(self) -> float:
        return sum(self.parts.values())


class _Cell:
    """Aggregated breakdown of every op that landed in one latency bucket."""

    __slots__ = ("count", "total_usec", "parts")

    def __init__(self) -> None:
        self.count = 0
        self.total_usec = 0.0
        self.parts: dict[str, float] = {}


class LatencyAttribution:
    """Bounded-memory aggregator over sampled :class:`OpContext` results.

    Memory is O(op types x latency buckets x components) for the cells
    plus ``slow_k`` full entries and ``reservoir_k`` exemplars —
    independent of operation count. All sampling decisions derive from
    the op sequence number and a seeded RNG, never wall clock, so two
    identical runs produce identical exports.
    """

    #: Version of the :meth:`to_dict` layout (nested inside the RunResult
    #: artifact, versioned independently of the artifact schema).
    SCHEMA = 1

    def __init__(
        self,
        *,
        seed: int = 0,
        sample_every: int = 1,
        slow_k: int = 8,
        reservoir_k: int = 4,
        bounds: tuple[float, ...] | None = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        if slow_k < 0 or reservoir_k < 0:
            raise ValueError("slow_k and reservoir_k must be non-negative")
        self.seed = seed
        self.sample_every = sample_every
        self.slow_k = slow_k
        self.reservoir_k = reservoir_k
        self.bounds = tuple(DEFAULT_LATENCY_BUCKETS if bounds is None else bounds)
        #: Optional zero-argument callable returning a JSON-safe LSM
        #: state snapshot, captured when an op enters the slow-op log.
        self.state_fn: Callable[[], dict] | None = None
        self._rng = make_rng(seed, "obs", "attribution")
        self._ops_offered = 0
        self._ops_sampled = 0
        self._cells: dict[str, list[_Cell | None]] = {}
        # Min-heap of (total_usec, seq, entry): the K slowest sampled ops.
        self._slow: list[tuple[float, int, dict]] = []
        self._examples: list[dict] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, op: str) -> OpContext | None:
        """Start attributing one operation; None when sampled out."""
        self._ops_offered += 1
        if self.sample_every > 1 and self._ops_offered % self.sample_every:
            return None
        return OpContext(op)

    def observe(self, ctx: OpContext, total_usec: float) -> None:
        """Fold one finished op into the aggregate state.

        ``total_usec`` is the latency the engine reported; any gap
        between it and the sum of attributed parts is recorded under
        :data:`RESIDUAL_KEY` so parts always sum to the total exactly.
        """
        parts = ctx.parts
        residual = total_usec - sum(parts.values())
        if residual:
            parts[RESIDUAL_KEY] = parts.get(RESIDUAL_KEY, 0.0) + residual
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:  # same rule as Histogram.observe: (b[i-1], b[i]]
            mid = (lo + hi) // 2
            if total_usec <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        cells = self._cells.get(ctx.op)
        if cells is None:
            cells = self._cells[ctx.op] = [None] * (len(bounds) + 1)
        cell = cells[lo]
        if cell is None:
            cell = cells[lo] = _Cell()
        cell.count += 1
        cell.total_usec += total_usec
        cell_parts = cell.parts
        for key, usec in parts.items():
            cell_parts[key] = cell_parts.get(key, 0.0) + usec

        seq = self._ops_sampled
        if self.slow_k > 0 and (
            len(self._slow) < self.slow_k or total_usec > self._slow[0][0]
        ):
            entry = self._make_entry(ctx, total_usec, seq, full=True)
            heapq.heappush(self._slow, (total_usec, seq, entry))
            if len(self._slow) > self.slow_k:
                heapq.heappop(self._slow)
        if self.reservoir_k > 0:
            if seq < self.reservoir_k:
                self._examples.append(self._make_entry(ctx, total_usec, seq, full=False))
            else:
                # Algorithm R over the sampled-op stream, seeded RNG.
                slot = self._rng.randrange(seq + 1)
                if slot < self.reservoir_k:
                    self._examples[slot] = self._make_entry(
                        ctx, total_usec, seq, full=False
                    )
        self._ops_sampled = seq + 1

    def _make_entry(self, ctx: OpContext, total_usec: float, seq: int, *, full: bool) -> dict:
        entry: dict = {
            "op": ctx.op,
            "seq": seq,
            "total_usec": total_usec,
            "parts": {key: ctx.parts[key] for key in sorted(ctx.parts)},
        }
        if ctx.probes:
            entry["probes"] = {key: ctx.probes[key] for key in sorted(ctx.probes)}
        if full:
            entry["events"] = [list(event) for event in ctx.events]
            entry["state"] = self.state_fn() if self.state_fn is not None else {}
        return entry

    # ------------------------------------------------------------------
    # Export / import (bit-exact round trip through JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe export; :meth:`from_dict` rebuilds it bit-exactly."""
        ops: dict[str, dict] = {}
        for op in sorted(self._cells):
            buckets = []
            count = 0
            total = 0.0
            for index, cell in enumerate(self._cells[op]):
                if cell is None or cell.count == 0:
                    continue
                count += cell.count
                total += cell.total_usec
                buckets.append(
                    {
                        "index": index,
                        "count": cell.count,
                        "total_usec": cell.total_usec,
                        "parts": {key: cell.parts[key] for key in sorted(cell.parts)},
                    }
                )
            ops[op] = {"count": count, "total_usec": total, "buckets": buckets}
        slow = [entry for _, _, entry in sorted(self._slow, key=lambda t: (-t[0], t[1]))]
        return {
            "schema": self.SCHEMA,
            "seed": self.seed,
            "sample_every": self.sample_every,
            "slow_k": self.slow_k,
            "reservoir_k": self.reservoir_k,
            "bounds": list(self.bounds),
            "ops_offered": self._ops_offered,
            "ops_sampled": self._ops_sampled,
            "ops": ops,
            "slow_ops": slow,
            "examples": list(self._examples),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyAttribution":
        """Rebuild aggregate state from :meth:`to_dict` output.

        The RNG stream is freshly seeded (continuing to record into a
        restored instance would not replay the original draws); restored
        instances are for inspection and re-export, which is bit-exact.
        """
        schema = data.get("schema")
        if schema != cls.SCHEMA:
            raise ValueError(
                f"unsupported attribution schema {schema!r} "
                f"(this build reads schema {cls.SCHEMA})"
            )
        attr = cls(
            seed=data["seed"],
            sample_every=data["sample_every"],
            slow_k=data["slow_k"],
            reservoir_k=data["reservoir_k"],
            bounds=tuple(data["bounds"]),
        )
        attr._ops_offered = data["ops_offered"]
        attr._ops_sampled = data["ops_sampled"]
        for op, info in data["ops"].items():
            cells: list[_Cell | None] = [None] * (len(attr.bounds) + 1)
            for bucket in info["buckets"]:
                cell = _Cell()
                cell.count = bucket["count"]
                cell.total_usec = bucket["total_usec"]
                cell.parts = dict(bucket["parts"])
                cells[bucket["index"]] = cell
            attr._cells[op] = cells
        attr._slow = [
            (entry["total_usec"], entry["seq"], dict(entry))
            for entry in data["slow_ops"]
        ]
        heapq.heapify(attr._slow)
        attr._examples = [dict(entry) for entry in data["examples"]]
        return attr


# ----------------------------------------------------------------------
# Percentile-band views over the exported dict (artifact-friendly: these
# operate on `RunResult.attribution`, no aggregator reconstruction).
# ----------------------------------------------------------------------
def band_breakdown(data: dict, op: str) -> dict[str, dict]:
    """Fold one op type's bucket cells into percentile bands.

    Returns ``band -> {"ops", "total_usec", "usec_per_op", "parts",
    "parts_per_op"}`` for each band in :data:`BANDS`. A bucket whose rank
    range straddles a band edge contributes fractionally to both sides;
    bands therefore partition the population exactly and per-band parts
    still sum to the per-band total.
    """
    info = (data or {}).get("ops", {}).get(op)
    out = {
        band: {"ops": 0.0, "total_usec": 0.0, "usec_per_op": 0.0,
               "parts": {}, "parts_per_op": {}}
        for band in BANDS
    }
    if not info or not info["count"]:
        return out
    total_count = info["count"]
    edges = [edge * total_count for edge in _BAND_EDGES]
    cum = 0
    for bucket in info["buckets"]:
        count = bucket["count"]
        lo, hi = cum, cum + count  # this bucket holds ranks (lo, hi]
        cum = hi
        for band, lo_edge, hi_edge in zip(BANDS, edges[:-1], edges[1:]):
            overlap = min(hi, hi_edge) - max(lo, lo_edge)
            if overlap <= 0:
                continue
            weight = overlap / count
            slot = out[band]
            slot["ops"] += overlap
            slot["total_usec"] += weight * bucket["total_usec"]
            parts = slot["parts"]
            for key, usec in bucket["parts"].items():
                parts[key] = parts.get(key, 0.0) + weight * usec
    for slot in out.values():
        ops = slot["ops"]
        if ops > 0:
            slot["usec_per_op"] = slot["total_usec"] / ops
            slot["parts_per_op"] = {
                key: usec / ops for key, usec in slot["parts"].items()
            }
    return out


def attribution_table(data: dict, *, top: int = 0) -> tuple[list[str], list[list]]:
    """(headers, rows) of per-band component shares for every op type."""
    headers = ["op", "band", "ops", "us/op", "component/tier", "comp us/op", "share"]
    rows: list[list] = []
    for op in sorted((data or {}).get("ops", {})):
        bands = band_breakdown(data, op)
        for band in BANDS:
            slot = bands[band]
            if slot["ops"] <= 0:
                continue
            parts = sorted(
                slot["parts_per_op"].items(), key=lambda kv: (-abs(kv[1]), kv[0])
            )
            if top > 0:
                parts = parts[:top]
            first = True
            for key, usec in parts:
                share = usec / slot["usec_per_op"] if slot["usec_per_op"] else 0.0
                rows.append(
                    [
                        op if first else "",
                        BAND_LABELS[band] if first else "",
                        f"{slot['ops']:.1f}" if first else "",
                        f"{slot['usec_per_op']:.1f}" if first else "",
                        key,
                        f"{usec:.2f}",
                        f"{share:6.1%}",
                    ]
                )
                first = False
    return headers, rows


def diff_attribution(
    baseline: dict, candidate: dict, *, op: str = "read", band: str = "p99"
) -> dict:
    """Decompose the per-op latency delta of one band between two runs.

    Returns ``{"op", "band", "baseline_usec", "candidate_usec",
    "delta_usec", "explained_fraction", "contributors": [...]}`` where
    each contributor is ``{"key", "baseline_usec", "candidate_usec",
    "delta_usec", "share"}`` (share of the total delta, signed). The
    contributors' deltas sum to ``delta_usec`` up to float rounding, so
    ``explained_fraction`` is ~1.0 whenever both runs attributed their
    latency fully.
    """
    if band not in BANDS:
        raise ValueError(f"unknown band {band!r}; expected one of {BANDS}")
    slot_a = band_breakdown(baseline, op)[band]
    slot_b = band_breakdown(candidate, op)[band]
    parts_a = slot_a["parts_per_op"]
    parts_b = slot_b["parts_per_op"]
    delta_total = slot_b["usec_per_op"] - slot_a["usec_per_op"]
    contributors = []
    explained = 0.0
    for key in sorted(set(parts_a) | set(parts_b)):
        a = parts_a.get(key, 0.0)
        b = parts_b.get(key, 0.0)
        delta = b - a
        explained += delta
        contributors.append(
            {
                "key": key,
                "baseline_usec": a,
                "candidate_usec": b,
                "delta_usec": delta,
                "share": delta / delta_total if delta_total else 0.0,
            }
        )
    contributors.sort(key=lambda c: (-abs(c["delta_usec"]), c["key"]))
    return {
        "op": op,
        "band": band,
        "baseline_ops": slot_a["ops"],
        "candidate_ops": slot_b["ops"],
        "baseline_usec": slot_a["usec_per_op"],
        "candidate_usec": slot_b["usec_per_op"],
        "delta_usec": delta_total,
        "explained_fraction": explained / delta_total if delta_total else 1.0,
        "contributors": contributors,
    }


def merge_attributions(exports: list[dict]) -> dict:
    """Merge per-shard :meth:`LatencyAttribution.to_dict` exports.

    The fleet merge path for per-request provenance. Bucket cells are
    keyed by the shared global latency bounds, so summing their counts,
    totals and parts per (op, bucket) reproduces exactly what one
    aggregator observing the combined stream would have accumulated —
    band tables over the merged export equal combined-stream band tables.
    The slow-op log takes the globally slowest ``slow_k`` entries across
    shards (exact, ties broken by input order then sequence number); the
    reservoir examples concatenate in input order and truncate to
    ``reservoir_k`` (a deterministic stand-in, not a uniform re-sample).
    A pure function of the input list: worker-count invariant.
    """
    exports = [e for e in exports if e]
    if not exports:
        return {}
    first = exports[0]
    bounds = list(first["bounds"])
    for export in exports:
        if list(export["bounds"]) != bounds:
            raise ValueError("cannot merge attributions with differing bounds")
        if export["schema"] != first["schema"]:
            raise ValueError("cannot merge attributions with differing schemas")
    ops: dict[str, dict] = {}
    for export in exports:
        for op in sorted(export["ops"]):
            info = export["ops"][op]
            target = ops.setdefault(op, {"count": 0, "total_usec": 0.0, "buckets": {}})
            target["count"] += info["count"]
            target["total_usec"] += info["total_usec"]
            for bucket in info["buckets"]:
                cell = target["buckets"].setdefault(
                    bucket["index"], {"count": 0, "total_usec": 0.0, "parts": {}}
                )
                cell["count"] += bucket["count"]
                cell["total_usec"] += bucket["total_usec"]
                parts = cell["parts"]
                for key, usec in bucket["parts"].items():
                    parts[key] = parts.get(key, 0.0) + usec
    merged_ops = {
        op: {
            "count": info["count"],
            "total_usec": info["total_usec"],
            "buckets": [
                {
                    "index": index,
                    "count": cell["count"],
                    "total_usec": cell["total_usec"],
                    "parts": {key: cell["parts"][key] for key in sorted(cell["parts"])},
                }
                for index, cell in sorted(info["buckets"].items())
            ],
        }
        for op, info in sorted(ops.items())
    }
    slow_k = max(e["slow_k"] for e in exports)
    slow_entries = []
    for position, export in enumerate(exports):
        for entry in export["slow_ops"]:
            entry = dict(entry)
            entry["shard"] = position
            slow_entries.append(entry)
    slow_entries.sort(key=lambda e: (-e["total_usec"], e["shard"], e["seq"]))
    reservoir_k = max(e["reservoir_k"] for e in exports)
    examples = [dict(entry) for export in exports for entry in export["examples"]]
    return {
        "schema": first["schema"],
        "seed": first["seed"],
        "sample_every": first["sample_every"],
        "slow_k": slow_k,
        "reservoir_k": reservoir_k,
        "bounds": bounds,
        "ops_offered": sum(e["ops_offered"] for e in exports),
        "ops_sampled": sum(e["ops_sampled"] for e in exports),
        "ops": merged_ops,
        "slow_ops": slow_entries[:slow_k],
        "examples": examples[:reservoir_k],
    }
