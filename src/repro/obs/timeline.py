"""Time-series telemetry: the simulated-clock timeline sampler.

A whole-run :meth:`MetricsRegistry.snapshot` says *what* happened; it
cannot say *when*. Burn-in vs steady state, compaction-debt waves, and
CLOCK-tracker convergence (the paper's Fig. 6 / Fig. 9 behaviour) are
inherently temporal. :class:`TimelineSampler` subscribes to the
:class:`~repro.common.clock.SimClock` observer hook and, every
``interval_ms`` of *simulated* time, records one row of interval
**deltas** of selected registry series into a bounded ring buffer:

* ``throughput_kops`` — operations completed in the interval;
* ``read_p50_usec`` / ``read_p99_usec`` / ``update_p50_usec`` /
  ``update_p99_usec`` — interval percentiles from *histogram bucket
  deltas* (``op.latency_usec``), so each point reflects only that
  interval's operations;
* ``device.read_bytes{tier=..}`` / ``device.write_bytes{tier=..}`` —
  bytes moved per tier in the interval (foreground + background);
* ``device.busy_frac{tier=..}`` — modeled device busy time over the
  interval (can exceed 1.0: background work queues faster than the
  interval drains it);
* ``cache.hit_rate`` / ``rowcache.hit_rate`` — interval hit rates;
* ``compaction.count{level=..}`` / ``compaction.write_bytes{level=..}``
  — compaction flow by source level;
* ``compaction.records{kind=pinned}`` / ``{kind=pulled_up}`` — the
  PrismDB placer's per-interval pin/pull-up rates;
* ``tracker.occupancy`` — instantaneous gauge level;
* any registered *probe* (``memtable.bytes``, ``l0.files``) — an
  instantaneous callable polled at sample time.

Rows are stamped with the current *phase* (``load`` / ``warmup`` /
``run``, set by the harness via :meth:`mark_phase`) so samples are
attributable. The ring buffer (``capacity`` rows) bounds memory: once
full, the oldest row is dropped and ``dropped`` counts it.

Everything is driven by simulated time and registry state — no
wall-clock, no randomness — so two runs with the same seed produce
bit-identical timelines (tested in ``tests/obs/test_timeline.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.common.clock import SimClock
from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    percentile_from_buckets,
)

#: Number of catch-up samples taken in a single clock move before the
#: sampler collapses the remainder into one row (a pathological jump
#: would otherwise stall the simulation emitting identical rows).
MAX_CATCHUP_SAMPLES = 64


class TimelineSampler:
    """Samples registry deltas into ring-buffered time series."""

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: SimClock,
        *,
        interval_ms: float = 10.0,
        capacity: int = 4096,
        probes: dict[str, Callable[[], float]] | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ObservabilityError(f"interval_ms must be positive: {interval_ms}")
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1: {capacity}")
        self.registry = registry
        self.clock = clock
        self.interval_ms = float(interval_ms)
        self.interval_usec = float(interval_ms) * 1_000.0
        self.capacity = capacity
        self.probes = dict(probes or {})
        self.dropped = 0
        self._rows: deque[tuple[float, str, dict[str, float]]] = deque(maxlen=capacity)
        self._phase = ""
        self._phases: list[tuple[float, str]] = []
        self._next_sample_usec = clock.now + self.interval_usec
        # Previous-sample state for delta series.
        self._prev_scalars: dict[str, float] = {}
        self._prev_buckets: dict[str, list[int]] = {}
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "TimelineSampler":
        """Subscribe to the clock; sampling starts one interval from now."""
        if not self._attached:
            self.clock.subscribe(self._on_tick)
            self._attached = True
            self._next_sample_usec = self.clock.now + self.interval_usec
        return self

    def detach(self) -> None:
        """Unsubscribe from the clock (the recorded timeline remains)."""
        if self._attached:
            self.clock.unsubscribe(self._on_tick)
            self._attached = False

    def mark_phase(self, phase: str) -> None:
        """Stamp subsequent samples with ``phase`` (load/warmup/run/...)."""
        self._phase = phase
        self._phases.append((self.clock.now / 1_000.0, phase))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _on_tick(self, now_usec: float) -> None:
        if now_usec < self._next_sample_usec:
            return
        taken = 0
        while now_usec >= self._next_sample_usec:
            if taken >= MAX_CATCHUP_SAMPLES:
                # Collapse the remaining boundaries into the final one:
                # the registry has not changed since the jump began, so
                # the skipped rows would be identical zero-delta rows.
                behind = now_usec - self._next_sample_usec
                self._next_sample_usec += (
                    (behind // self.interval_usec) * self.interval_usec
                )
            self._take_sample(self._next_sample_usec)
            self._next_sample_usec += self.interval_usec
            taken += 1

    def _counter_delta(self, key: str, value: float) -> float:
        previous = self._prev_scalars.get(key, 0.0)
        self._prev_scalars[key] = value
        return value - previous

    def _histogram_delta(self, key: str, hist: Histogram) -> list[int]:
        previous = self._prev_buckets.get(key)
        current = list(hist.bucket_counts)
        self._prev_buckets[key] = current
        if previous is None:
            return current
        return [c - p for c, p in zip(current, previous)]

    def _take_sample(self, at_usec: float) -> None:
        registry = self.registry
        values: dict[str, float] = {}

        # Throughput and interval latency percentiles from op histograms.
        ops_delta = 0.0
        for op in ("read", "update", "scan"):
            hist = registry.instrument("op.latency_usec", op=op)
            if hist is None:
                continue
            delta = self._histogram_delta(f"op:{op}", hist)
            op_count = sum(delta)
            ops_delta += op_count
            if op in ("read", "update"):
                values[f"{op}_p50_usec"] = percentile_from_buckets(
                    hist.bounds, delta, 50.0
                )
                values[f"{op}_p99_usec"] = percentile_from_buckets(
                    hist.bounds, delta, 99.0
                )
        interval_sec = self.interval_usec / 1_000_000.0
        values["throughput_kops"] = ops_delta / interval_sec / 1_000.0

        # Per-tier I/O and busy fraction.
        for tier in registry.label_values("device.busy_usec", "tier"):
            read_bytes = registry.total("device.read_bytes", tier=tier)
            write_bytes = registry.total("device.write_bytes", tier=tier)
            busy = registry.total("device.busy_usec", tier=tier)
            values[f"device.read_bytes{{tier={tier}}}"] = self._counter_delta(
                f"dr:{tier}", read_bytes
            )
            values[f"device.write_bytes{{tier={tier}}}"] = self._counter_delta(
                f"dw:{tier}", write_bytes
            )
            values[f"device.busy_frac{{tier={tier}}}"] = (
                self._counter_delta(f"db:{tier}", busy) / self.interval_usec
            )

        # Cache hit rates over the interval. The row cache only appears
        # when bound (rowcache.hits has no labels, so instrument() works).
        for metric in ("cache", "rowcache"):
            if metric == "rowcache" and registry.instrument("rowcache.hits") is None:
                continue
            hit_delta = self._counter_delta(
                f"ch:{metric}", registry.total(f"{metric}.hits")
            )
            miss_delta = self._counter_delta(
                f"cm:{metric}", registry.total(f"{metric}.misses")
            )
            lookups = hit_delta + miss_delta
            values[f"{metric}.hit_rate"] = hit_delta / lookups if lookups else 0.0

        # Compaction flow by source level.
        for level in registry.label_values("compaction.count", "level"):
            values[f"compaction.count{{level={level}}}"] = self._counter_delta(
                f"cc:{level}", registry.total("compaction.count", level=level)
            )
        for level in registry.label_values("compaction.write_bytes", "level"):
            values[f"compaction.write_bytes{{level={level}}}"] = self._counter_delta(
                f"cw:{level}", registry.total("compaction.write_bytes", level=level)
            )

        # Placer activity (PrismDB pin / pull-up rates).
        for kind in ("pinned", "pulled_up"):
            values[f"compaction.records{{kind={kind}}}"] = self._counter_delta(
                f"cr:{kind}", registry.total("compaction.records", kind=kind)
            )

        # Instantaneous levels: tracker occupancy gauge plus probes.
        if registry.instrument("tracker.occupancy") is not None:
            values["tracker.occupancy"] = registry.value("tracker.occupancy")
        for name, probe in self.probes.items():
            values[name] = float(probe())

        if len(self._rows) == self.capacity:
            self.dropped += 1
        self._rows.append((at_usec / 1_000.0, self._phase, values))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> list[tuple[float, str, dict[str, float]]]:
        """The sampled rows, oldest first (copied)."""
        return list(self._rows)

    def series_names(self) -> list[str]:
        names: set[str] = set()
        for _, _, values in self._rows:
            names.update(values)
        return sorted(names)

    def to_dict(self) -> dict:
        """A JSON-safe, column-oriented export of the whole timeline."""
        columns = self.series_names()
        t_ms: list[float] = []
        phases: list[str] = []
        series: dict[str, list[float]] = {name: [] for name in columns}
        for at_ms, phase, values in self._rows:
            t_ms.append(at_ms)
            phases.append(phase)
            for name in columns:
                series[name].append(values.get(name, 0.0))
        return {
            "schema": 1,
            "interval_ms": self.interval_ms,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "phases": [[at_ms, phase] for at_ms, phase in self._phases],
            "t_ms": t_ms,
            "phase": phases,
            "series": series,
        }


#: Series name predicates for :func:`merge_timelines`. Everything whose
#: name matches a *weighted* pattern is an intensive quantity (a rate or
#: a percentile) and merges as a throughput-weighted mean; every other
#: series is extensive (ops, bytes, counts, busy time, occupancy levels)
#: and merges as an element-wise sum — the property the merge tests pin.
_WEIGHTED_SUFFIXES = ("_p50_usec", "_p99_usec")
_WEIGHTED_EXACT = ("cache.hit_rate", "rowcache.hit_rate")


def _is_weighted_series(name: str) -> bool:
    return name.endswith(_WEIGHTED_SUFFIXES) or name in _WEIGHTED_EXACT


def merge_timelines(timelines: list[dict]) -> dict:
    """Merge per-shard :meth:`TimelineSampler.to_dict` exports.

    All inputs must share one ``interval_ms``; rows are aligned by
    interval index (every shard's simulated clock starts at zero, so row
    ``k`` of every shard covers the same simulated window). Extensive
    series — throughput, byte counters, compaction counts, busy time,
    probe levels — sum element-wise, which is exactly what one sampler
    observing the combined stream would have recorded. Intensive series
    (interval percentiles, cache hit rates) cannot be recovered from
    per-shard aggregates; they merge as a mean weighted by each shard's
    interval throughput, which is exact for hit rates when lookups track
    ops and a documented approximation for percentiles. Phase markers
    come from the first (longest-phased) input; ``dropped`` sums.

    The merge is a pure function of the input list, independent of any
    execution order — the fleet's worker-count invariance rests on it.
    """
    timelines = [t for t in timelines if t]
    if not timelines:
        return {}
    interval_ms = timelines[0]["interval_ms"]
    for timeline in timelines:
        if timeline["interval_ms"] != interval_ms:
            raise ObservabilityError(
                f"cannot merge timelines with differing intervals: "
                f"{timeline['interval_ms']} vs {interval_ms}"
            )
    length = max(len(t["t_ms"]) for t in timelines)
    names = sorted({name for t in timelines for name in t["series"]})
    # Tie-break equal-length inputs on their marker content, not their
    # list position: phase provenance must be order-invariant too (the
    # merge property tests reverse the input list and diff the result).
    longest = max(
        timelines,
        key=lambda t: (
            len(t["t_ms"]),
            [(float(m[0]), str(m[1])) for m in t["phases"]],
            list(t["phase"]),
        ),
    )
    # The merged grid: interval boundaries of the longest timeline.
    t_ms = list(longest["t_ms"])
    phase = list(longest["phase"])
    weights = []  # per input: per-row throughput weight (ops proxy)
    for timeline in timelines:
        tp = timeline["series"].get("throughput_kops")
        weights.append(tp if tp is not None else [1.0] * len(timeline["t_ms"]))
    series: dict[str, list[float]] = {}
    for name in names:
        weighted = _is_weighted_series(name)
        out = []
        for k in range(length):
            if weighted:
                acc = 0.0
                weight_total = 0.0
                for timeline, wvec in zip(timelines, weights):
                    values = timeline["series"].get(name)
                    if values is None or k >= len(values):
                        continue
                    w = wvec[k] if k < len(wvec) else 0.0
                    acc += values[k] * w
                    weight_total += w
                out.append(acc / weight_total if weight_total else 0.0)
            else:
                total = 0.0
                for timeline in timelines:
                    values = timeline["series"].get(name)
                    if values is not None and k < len(values):
                        total += values[k]
                out.append(total)
        series[name] = out
    return {
        "schema": 1,
        "interval_ms": interval_ms,
        "capacity": max(t["capacity"] for t in timelines),
        "dropped": sum(t["dropped"] for t in timelines),
        "phases": [list(marker) for marker in longest["phases"]],
        "t_ms": t_ms,
        "phase": phase,
        "series": series,
    }


def timeline_series(timeline: dict, name: str) -> list[float]:
    """One series' values from a :meth:`TimelineSampler.to_dict` export."""
    series = timeline.get("series", {})
    if name not in series:
        known = ", ".join(sorted(series)) or "(none)"
        raise ObservabilityError(f"unknown timeline series {name!r}; have: {known}")
    return series[name]
