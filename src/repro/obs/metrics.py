"""The metrics registry: counters, gauges and log-bucketed histograms.

Every component registers its instruments by *name* plus a small set of
*labels* (``tier``, ``level``, ``op``, ``component``, ...), following the
``component.metric{label=value}`` naming scheme documented in
``docs/OBSERVABILITY.md``. One :class:`MetricsRegistry` lives on each
database instance; the harness snapshots it after a run and every report
(the Fig. 10 latency breakdown, the Fig. 12 I/O accounting) is derived
from that snapshot alone instead of bespoke stat plumbing.

Histograms use *fixed, log-spaced bucket boundaries* so memory stays
bounded no matter how many samples are observed — the replacement for
the unbounded per-sample lists the harness used to keep. Percentiles are
nearest-rank over the cumulative bucket counts, reported at the bucket's
upper bound (clamped to the observed maximum), which for the default
base-2 boundaries bounds the relative error by the bucket width.

Two guards keep instrumentation honest:

* a metric name must always be used with one instrument type and one
  label-name set (re-registering ``device.read_bytes`` as a histogram, or
  with different label names, raises :class:`ObservabilityError`);
* each metric name may hold at most ``max_series_per_metric`` distinct
  label combinations, so an unbounded label value (a raw key, a file id)
  fails fast instead of silently exhausting memory.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Iterator

from repro.common.stats import LatencySummary
from repro.errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: Label key: canonical, hashable form of one label combination.
LabelKey = tuple[tuple[str, str], ...]


def label_key(labels: dict[str, object]) -> LabelKey:
    """Canonicalize a label dict: sorted (name, str(value)) pairs."""
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def format_series(name: str, key: LabelKey) -> str:
    """Render ``component.metric{label=value,...}`` for display."""
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically non-decreasing value (float, so usec sums fit)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative: {amount}")
        self.value += amount


class Gauge:
    """A value that can move in both directions (occupancy, backlog)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced upper bounds: start, start*factor, ..."""
    if start <= 0:
        raise ValueError(f"bucket start must be positive: {start}")
    if factor <= 1.0:
        raise ValueError(f"bucket factor must be > 1: {factor}")
    if count < 1:
        raise ValueError(f"bucket count must be >= 1: {count}")
    return tuple(start * factor**i for i in range(count))


#: Default latency boundaries: powers of two from 1 us to ~67 s (2^26 us).
#: 27 buckets plus one overflow bucket cover every simulated latency the
#: device models can produce at <= 2x relative error per bucket.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(1.0, 2.0, 27)


def percentile_from_buckets(
    bounds: tuple[float, ...],
    bucket_counts: list[int],
    pct: float,
    maximum: float | None = None,
) -> float:
    """Nearest-rank percentile over an arbitrary bucket-count vector.

    The workhorse behind both :meth:`Histogram.percentile` and *delta*
    percentiles (interval percentiles computed from the difference of two
    bucket snapshots — see :mod:`repro.obs.timeline`). ``bucket_counts``
    has ``len(bounds) + 1`` entries, the last being the overflow bucket.
    ``maximum`` clamps the reported bound to the observed max when known;
    without it the overflow bucket reports the last finite bound.
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct}")
    count = sum(bucket_counts)
    if count == 0:
        return 0.0
    rank = min(count, max(1, math.ceil(pct / 100.0 * count)))
    cumulative = 0
    for index, bucket_count in enumerate(bucket_counts):
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(bounds):
                return maximum if maximum is not None else bounds[-1]
            bound = bounds[index]
            return min(bound, maximum) if maximum is not None else bound
    return maximum if maximum is not None else bounds[-1]  # pragma: no cover


class Histogram:
    """Fixed-bucket histogram with nearest-rank percentile estimates.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything beyond the last edge.
    Memory is O(len(bounds)) regardless of sample count.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative observation: {value}")
        # C-implemented bisect over fixed bounds; an observation lands in
        # the first bucket whose upper edge is >= value.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile estimate from the bucket counts.

        Returns the upper bound of the bucket holding the ranked sample,
        clamped to the observed max (the overflow bucket and the final
        bucket report the true maximum, so p100 is always exact).
        """
        if self.count == 0:
            if not 0.0 <= pct <= 100.0:
                raise ValueError(f"percentile out of range: {pct}")
            return 0.0
        return percentile_from_buckets(
            self.bounds, self.bucket_counts, pct, maximum=self.maximum
        )

    def summary(self) -> LatencySummary:
        """The same shape :class:`LatencyRecorder` reports, from buckets."""
        if self.count == 0:
            return LatencySummary.empty()
        return LatencySummary(
            count=self.count,
            mean=self.mean,
            p50=self.percentile(50.0),
            p95=self.percentile(95.0),
            p99=self.percentile(99.0),
            maximum=self.maximum,
        )


class MetricsRegistry:
    """Named, labeled instruments with snapshot and query support."""

    def __init__(self, *, max_series_per_metric: int = 256) -> None:
        if max_series_per_metric < 1:
            raise ObservabilityError("max_series_per_metric must be >= 1")
        self.max_series_per_metric = max_series_per_metric
        # name -> (kind, labelnames, {label_key: instrument})
        self._metrics: dict[str, tuple[str, frozenset[str], dict[LabelKey, object]]] = {}
        # Fast handle cache: (kind, name, labels-in-call-order, extra) ->
        # instrument. Repeated counter()/gauge()/histogram() calls from
        # the same call site hit this dict directly and skip the
        # canonicalization (frozenset + sorted label_key) and validation
        # of the slow path. Misses (first call, or a differing kwarg
        # order) fall through to _get_or_create, which still enforces
        # every guard, so invalid re-registrations raise exactly as
        # before. Two kwarg orders for the same series simply occupy two
        # cache slots pointing at the same instrument.
        self._handles: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: str, factory, labels: dict[str, object]):
        entry = self._metrics.get(name)
        if entry is None:
            if not _NAME_RE.match(name):
                raise ObservabilityError(
                    f"invalid metric name {name!r} (want dotted lower_snake)"
                )
            entry = (kind, frozenset(labels), {})
            self._metrics[name] = entry
        existing_kind, labelnames, series = entry
        if existing_kind != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as {existing_kind}, not {kind}"
            )
        if labelnames != frozenset(labels):
            raise ObservabilityError(
                f"metric {name!r} uses labels {sorted(labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = label_key(labels)
        instrument = series.get(key)
        if instrument is None:
            if len(series) >= self.max_series_per_metric:
                raise ObservabilityError(
                    f"metric {name!r} exceeds {self.max_series_per_metric} "
                    f"label combinations (runaway label cardinality?)"
                )
            instrument = factory()
            series[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter for one label combination."""
        key = ("counter", name, tuple(labels.items()))
        instrument = self._handles.get(key)
        if instrument is None:
            instrument = self._get_or_create(name, "counter", Counter, labels)
            self._handles[key] = instrument
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = ("gauge", name, tuple(labels.items()))
        instrument = self._handles.get(key)
        if instrument is None:
            instrument = self._get_or_create(name, "gauge", Gauge, labels)
            self._handles[key] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        key = ("histogram", name, tuple(labels.items()), buckets)
        instrument = self._handles.get(key)
        if instrument is None:
            instrument = self._get_or_create(
                name, "histogram", lambda: Histogram(buckets), labels
            )
            self._handles[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def series(self, name: str) -> Iterator[tuple[dict[str, str], object]]:
        """Yield (labels, instrument) for every series of ``name``."""
        entry = self._metrics.get(name)
        if entry is None:
            return
        for key, instrument in entry[2].items():
            yield dict(key), instrument

    def value(self, name: str, **labels) -> float:
        """One series' scalar value; 0.0 if the series does not exist."""
        instrument = self.instrument(name, **labels)
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value

    def instrument(self, name: str, **labels):
        """The live instrument for one series, or None if absent.

        Read-only access for consumers that need more than a scalar —
        the timeline sampler diffs histogram bucket vectors between
        samples through this accessor.
        """
        entry = self._metrics.get(name)
        if entry is None:
            return None
        return entry[2].get(label_key(labels))

    def label_values(self, name: str, label: str) -> list[str]:
        """Sorted distinct values ``label`` takes across ``name``'s series."""
        values = {
            labels[label]
            for labels, _ in self.series(name)
            if label in labels
        }
        return sorted(values)

    def total(self, name: str, **label_filter) -> float:
        """Sum of all series of ``name`` whose labels match the filter.

        Histogram series contribute their observation *count*. This is
        the workhorse for conservation checks, e.g.
        ``registry.total("device.write_bytes", tier="qlc-L4")``.
        """
        wanted = {k: str(v) for k, v in label_filter.items()}
        out = 0.0
        for labels, instrument in self.series(name):
            if all(labels.get(k) == v for k, v in wanted.items()):
                if isinstance(instrument, Histogram):
                    out += instrument.count
                else:
                    out += instrument.value
        return out

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict, JSON-safe snapshot of every series.

        Counters/gauges carry ``value``; histograms carry their bucket
        state plus precomputed mean/p50/p95/p99/max so report code can
        format them without re-deriving.
        """
        out: dict = {}
        for name in self.names():
            kind, _, series = self._metrics[name]
            rendered = []
            for key in sorted(series):
                instrument = series[key]
                row: dict = {"labels": dict(key)}
                if isinstance(instrument, Histogram):
                    row.update(
                        count=instrument.count,
                        sum=instrument.total,
                        mean=instrument.mean,
                        p50=instrument.percentile(50.0),
                        p95=instrument.percentile(95.0),
                        p99=instrument.percentile(99.0),
                        max=instrument.maximum if instrument.count else 0.0,
                        bounds=list(instrument.bounds),
                        buckets=list(instrument.bucket_counts),
                    )
                else:
                    row["value"] = instrument.value
                rendered.append(row)
            out[name] = {"type": kind, "series": rendered}
        return out

    @staticmethod
    def merge_snapshots(snapshots: list[dict]) -> dict:
        """Merge per-instance :meth:`snapshot` exports into one snapshot.

        The fleet merge path: every shard carries a full registry
        snapshot, and the fleet-level view is their series-wise sum.
        Counters and histogram observations add exactly; gauges add too
        (a fleet gauge like ``tracker.occupancy`` is the sum of per-shard
        levels). Histogram percentiles are recomputed from the merged
        bucket vectors (mean stays exact: summed ``sum`` over summed
        ``count``), so a merged p99 equals the combined-stream p99 at
        bucket resolution. Series are processed in sorted order, so the
        result is independent of snapshot ordering apart from which
        instance contributed first — snapshots must agree on each
        metric's type (they do, by construction: one codebase registered
        them).
        """
        merged: dict = {}
        for snapshot in snapshots:
            for name in sorted(snapshot):
                metric = snapshot[name]
                target = merged.setdefault(
                    name, {"type": metric["type"], "series": []}
                )
                if target["type"] != metric["type"]:
                    raise ObservabilityError(
                        f"metric {name!r} merged as {target['type']} and "
                        f"{metric['type']}"
                    )
                by_labels = {
                    label_key(row["labels"]): row for row in target["series"]
                }
                for row in metric["series"]:
                    key = label_key(row["labels"])
                    into = by_labels.get(key)
                    if into is None:
                        copied = {k: (dict(v) if isinstance(v, dict) else
                                      list(v) if isinstance(v, list) else v)
                                  for k, v in row.items()}
                        target["series"].append(copied)
                        continue
                    if "value" in row:
                        into["value"] += row["value"]
                    else:
                        if list(into["bounds"]) != list(row["bounds"]):
                            raise ObservabilityError(
                                f"metric {name!r} merged with differing "
                                f"histogram bounds"
                            )
                        into["count"] += row["count"]
                        into["sum"] += row["sum"]
                        into["max"] = max(into["max"], row["max"])
                        into["buckets"] = [
                            a + b for a, b in zip(into["buckets"], row["buckets"])
                        ]
                        into["mean"] = (
                            into["sum"] / into["count"] if into["count"] else 0.0
                        )
                        for pct in (50.0, 95.0, 99.0):
                            into[f"p{pct:g}"] = percentile_from_buckets(
                                tuple(into["bounds"]), into["buckets"], pct,
                                maximum=into["max"] if into["count"] else None,
                            )
        # Deterministic presentation: sorted series within each metric.
        for metric in merged.values():
            metric["series"].sort(key=lambda row: label_key(row["labels"]))
        return merged

    def render_flat(self) -> dict[str, float]:
        """Flat ``name{label=value}`` -> scalar view (histograms: count)."""
        flat: dict[str, float] = {}
        for name in self.names():
            _, _, series = self._metrics[name]
            for key in sorted(series):
                instrument = series[key]
                if isinstance(instrument, Histogram):
                    flat[format_series(name + ".count", key)] = float(instrument.count)
                    flat[format_series(name + ".sum", key)] = instrument.total
                else:
                    flat[format_series(name, key)] = instrument.value
        return flat
