"""Structured tracing on the simulated clock.

A :class:`Tracer` records *spans* (a named interval with labels, e.g. one
compaction job) and *instants* (a point event, e.g. a trivial move) with
timestamps taken from the shared :class:`~repro.common.clock.SimClock`,
so a trace shows where **simulated** time goes — the same time the
benchmarks report.

Events use the Chrome Trace Event Format (``ph: "X"`` complete events and
``ph: "i"`` instants with microsecond ``ts``/``dur``), serialized one
JSON object per line (JSONL). :meth:`Tracer.write_chrome_json` wraps the
same events in the ``{"traceEvents": [...]}`` envelope that
``chrome://tracing`` and https://ui.perfetto.dev open directly; the JSONL
file is the stable on-disk schema (see ``docs/OBSERVABILITY.md``).

Tracing defaults to *disabled*: ``span()`` then returns one shared no-op
context manager and records nothing — no event objects, no clock reads,
no per-call allocation — so instrumented hot paths cost a single branch.
``sample_every=N`` keeps every Nth span once enabled (instants are always
kept; they are rare); sampled-out spans are counted in
:attr:`Tracer.spans_dropped`.

Serialized traces lead with chrome-trace ``M`` metadata events: a
``trace_config`` record carrying the effective ``sample_every`` and the
drop counters, plus ``process_name``/``thread_name`` records that name a
pseudo-process per component (span name) and a pseudo-thread per tier —
so chrome://tracing groups "compaction on tlc" under a labeled track
instead of one anonymous pid 0 lane.
"""

from __future__ import annotations

import json
from typing import IO

from repro.common.clock import SimClock


class _NoopSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_duration(self, dur_usec: float) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _Span:
    """An open span; closing it appends one complete ("X") event."""

    __slots__ = ("_tracer", "_name", "_args", "_start", "_dur_override", "_pid", "_tid")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args
        self._start = tracer.clock.now
        self._dur_override: float | None = None
        self._pid, self._tid = tracer._track_for(name, args.get("tier", ""))

    def set_duration(self, dur_usec: float) -> None:
        """Override the span duration.

        Background work (compaction, migration) does not advance the
        simulated clock directly — its cost is modeled as device busy
        time and backlog. Instrumentation passes that modeled service
        time here so the trace still shows where simulated time went.
        """
        self._dur_override = max(0.0, dur_usec)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc_info) -> None:
        clock = self._tracer.clock
        dur = clock.now - self._start if self._dur_override is None else self._dur_override
        self._tracer._append(
            {
                "name": self._name,
                "cat": "repro",
                "ph": "X",
                "ts": self._start,
                "dur": dur,
                "pid": self._pid,
                "tid": self._tid,
                "args": self._args,
            }
        )


class Tracer:
    """Span/instant recorder over a simulated clock.

    ``clock`` may be None only while disabled (the no-op mode never reads
    it). ``max_events`` bounds memory: beyond it new events are dropped
    and counted in :attr:`dropped_events`.
    """

    def __init__(
        self,
        clock: SimClock | None,
        *,
        enabled: bool = True,
        sample_every: int = 1,
        max_events: int = 1_000_000,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        if enabled and clock is None:
            raise ValueError("an enabled tracer needs a clock")
        self.clock = clock  # type: ignore[assignment]
        self._enabled = enabled
        self._sample_every = sample_every
        self._max_events = max_events
        self._span_seq = 0
        self.events: list[dict] = []
        self.dropped_events = 0
        #: Spans skipped by ``sample_every`` (distinct from
        #: :attr:`dropped_events`, the memory-bound overflow count).
        self.spans_dropped = 0
        # Pseudo-process per component name and pseudo-thread per
        # (pid, tier), assigned in first-use order so identical runs
        # produce identical ids (the golden-trace determinism test).
        self._process_ids: dict[str, int] = {}
        self._thread_ids: dict[tuple[int, str], int] = {}

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, *, sample_every: int | None = None) -> None:
        """Turn recording on (the registry-owner flips this for runs)."""
        if self.clock is None:
            raise ValueError("cannot enable a tracer that has no clock")
        if sample_every is not None:
            if sample_every < 1:
                raise ValueError(f"sample_every must be >= 1: {sample_every}")
            self._sample_every = sample_every
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(self, event: dict) -> None:
        if len(self.events) >= self._max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def _track_for(self, name: str, tier: str) -> tuple[int, int]:
        """(pid, tid) for a component/tier pair, assigned on first use."""
        pid = self._process_ids.get(name)
        if pid is None:
            pid = self._process_ids[name] = len(self._process_ids) + 1
        key = (pid, tier)
        tid = self._thread_ids.get(key)
        if tid is None:
            tid = self._thread_ids[key] = sum(
                1 for existing in self._thread_ids if existing[0] == pid
            )
        return pid, tid

    def span(self, name: str, **labels):
        """Open a span: ``with tracer.span("compaction", tier="tlc"): ...``"""
        if not self._enabled:
            return _NOOP_SPAN
        self._span_seq += 1
        if self._sample_every > 1 and self._span_seq % self._sample_every:
            self.spans_dropped += 1
            return _NOOP_SPAN
        return _Span(self, name, {k: str(v) for k, v in labels.items()})

    def instant(self, name: str, **labels) -> None:
        """Record a point event (always kept while enabled)."""
        if not self._enabled:
            return
        args = {k: str(v) for k, v in labels.items()}
        pid, tid = self._track_for(name, args.get("tier", ""))
        self._append(
            {
                "name": name,
                "cat": "repro",
                "ph": "i",
                "ts": self.clock.now,
                "s": "g",
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0
        self.spans_dropped = 0
        self._span_seq = 0
        self._process_ids.clear()
        self._thread_ids.clear()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def metadata_events(self) -> list[dict]:
        """Chrome-trace ``M`` metadata naming the pseudo-tracks.

        One ``trace_config`` record (effective ``sample_every`` plus both
        drop counters), one ``process_name`` per component, and one
        ``thread_name`` per (component, tier) pair. Regenerated at each
        serialization so the drop counters are current; not stored in
        :attr:`events`.
        """
        meta = [
            {
                "name": "trace_config",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": 0,
                "tid": 0,
                "args": {
                    "sample_every": self._sample_every,
                    "spans_dropped": self.spans_dropped,
                    "events_dropped": self.dropped_events,
                },
            }
        ]
        for name, pid in self._process_ids.items():
            meta.append(
                {
                    "name": "process_name",
                    "cat": "__metadata",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        for (pid, tier), tid in self._thread_ids.items():
            meta.append(
                {
                    "name": "thread_name",
                    "cat": "__metadata",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tier or "main"},
                }
            )
        return meta

    def write_jsonl(self, path_or_file: str | IO[str]) -> int:
        """Write one chrome-trace event per line (metadata first);
        returns the number of lines written."""
        if hasattr(path_or_file, "write"):
            written = 0
            for event in self.metadata_events() + self.events:
                path_or_file.write(json.dumps(event, sort_keys=True) + "\n")
                written += 1
            return written
        with open(path_or_file, "w", encoding="utf-8") as handle:
            return self.write_jsonl(handle)

    def write_chrome_json(self, path_or_file: str | IO[str]) -> int:
        """Write the ``{"traceEvents": [...]}`` envelope chrome opens."""
        if hasattr(path_or_file, "write"):
            events = self.metadata_events() + self.events
            json.dump(
                {"traceEvents": events, "displayTimeUnit": "ms"},
                path_or_file,
                sort_keys=True,
            )
            return len(events)
        with open(path_or_file, "w", encoding="utf-8") as handle:
            return self.write_chrome_json(handle)


def read_jsonl(path: str) -> list[dict]:
    """Parse a JSONL trace file back into event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def jsonl_to_chrome_json(jsonl_path: str, json_path: str) -> int:
    """Convert a JSONL trace into a chrome://tracing-openable JSON file."""
    events = read_jsonl(jsonl_path)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


#: Process-wide disabled tracer, safe to share (it never mutates).
NOOP_TRACER = Tracer(None, enabled=False)
