"""PrismDB reproduction: read-aware LSM trees for heterogeneous storage.

This package reimplements, in simulation-grade Python, the full system
from *Efficient Compactions between Storage Tiers with PrismDB* (ASPLOS
2023; arXiv title *PrismDB: Read-aware Log-structured Merge Trees for
Heterogeneous Storage*): a leveled LSM engine, the PrismDB
tracker/mapper/placer read-aware compaction machinery, the RocksDB and
Mutant baselines, YCSB-style workloads, and the cost/endurance analysis.

Quickstart::

    from repro import PrismDB, PrismOptions, options_for_db_size

    options = options_for_db_size(20_000 * 130)
    db = PrismDB.create("NNNTQ", options, PrismOptions.for_keyspace(20_000))
    db.put(b"key", b"value")
    assert db.get(b"key").value == b"value"
"""

from repro.baselines import MutantDB, MutantOptions, RocksDBLike
from repro.core import ClockDistributionMapper, ClockTracker, PrismDB, PrismOptions
from repro.lsm import (
    DBOptions,
    LsmDB,
    ReadResult,
    ScanResult,
    StorageLayout,
    WriteResult,
    build_layout,
    homogeneous_layout,
    nnntq_layout,
    options_for_db_size,
)
from repro.workloads import YCSBConfig, YCSBWorkload

__version__ = "1.0.0"

__all__ = [
    "MutantDB",
    "MutantOptions",
    "RocksDBLike",
    "ClockDistributionMapper",
    "ClockTracker",
    "PrismDB",
    "PrismOptions",
    "DBOptions",
    "LsmDB",
    "ReadResult",
    "ScanResult",
    "StorageLayout",
    "WriteResult",
    "build_layout",
    "homogeneous_layout",
    "nnntq_layout",
    "options_for_db_size",
    "YCSBConfig",
    "YCSBWorkload",
    "__version__",
]
