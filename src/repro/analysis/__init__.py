"""Analytic models: the Fig. 4 cost/latency enumeration and amplification."""

from repro.analysis.amplification import (
    IOBreakdown,
    read_amplification,
    write_amplification,
)
from repro.analysis.level_model import (
    PinReserveImpact,
    levels_required,
    optimal_multiplier,
    pin_reserve_impact,
    write_amplification_estimate,
)
from repro.analysis.cost_model import (
    PAPER_DB_BYTES,
    TABLE3_CODES,
    ConfigEvaluation,
    LevelProfile,
    default_level_profiles,
    enumerate_configs,
    evaluate_config,
    pareto_frontier,
    table3_costs,
)

__all__ = [
    "IOBreakdown",
    "read_amplification",
    "write_amplification",
    "PinReserveImpact",
    "levels_required",
    "optimal_multiplier",
    "pin_reserve_impact",
    "write_amplification_estimate",
    "PAPER_DB_BYTES",
    "TABLE3_CODES",
    "ConfigEvaluation",
    "LevelProfile",
    "default_level_profiles",
    "enumerate_configs",
    "evaluate_config",
    "pareto_frontier",
    "table3_costs",
]
