"""The Fig. 4 / Table 3 analytic cost-vs-latency model.

The paper simulates, for every assignment of the five LSM levels to the
three storage technologies (3⁵ = 243 configurations), the average storage
read latency and the storage cost under a 3-year minimum device lifetime.
Reads and writes per level follow a RocksDB-production-like profile for a
223 GB database; technologies whose endurance cannot absorb a level's
write rate for 3 years are provisioned with spare capacity (the
enterprise-SSD over-provisioning rule), raising their cost.

This module reproduces that enumeration: :func:`enumerate_configs` yields
one :class:`ConfigEvaluation` per five-letter code, and
:func:`pareto_frontier` extracts the efficient set that Fig. 4 highlights.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.common.units import GIB, MIB
from repro.errors import ConfigError
from repro.storage.device import SPECS_BY_CODE, DeviceSpec
from repro.storage.endurance import DEFAULT_LIFETIME_SECONDS, provision_capacity

#: Database size used throughout the paper's simulation (§3.2, Table 3).
PAPER_DB_BYTES = 223 * GIB


@dataclass(frozen=True)
class LevelProfile:
    """Workload seen by one LSM level in the analytic model."""

    level: int
    size_bytes: int
    read_fraction: float
    write_bytes_per_sec: float


def default_level_profiles(
    db_bytes: int = PAPER_DB_BYTES,
    *,
    num_levels: int = 5,
    size_multiplier: int = 8,
    read_fractions: tuple[float, ...] | None = None,
    write_shares: tuple[float, ...] | None = None,
    total_write_rate_bps: float = 256 * 1024,
) -> list[LevelProfile]:
    """A RocksDB-production-like per-level profile.

    Level sizes follow dynamic leveling (bottom level holds the bulk;
    each shallower level divides by the multiplier). Read fractions
    default to the storage-level part of the paper's Table 2 (point
    reads with cache disabled, memtable share excluded and renormalized);
    write shares default to the compaction-flow split our engine
    measures, which matches the usual leveled-LSM picture of most bytes
    landing in the two bottom levels.
    """
    if read_fractions is None:
        # Table 2: L0 3%, L1 2%, L2 5%, L3 16%, L4 49% -> renormalized.
        raw = (0.03, 0.02, 0.05, 0.16, 0.49)
        total = sum(raw)
        read_fractions = tuple(value / total for value in raw)
    if write_shares is None:
        write_shares = (0.14, 0.14, 0.09, 0.28, 0.35)
    if len(read_fractions) != num_levels or len(write_shares) != num_levels:
        raise ConfigError("profile tuples must have one entry per level")

    sizes: list[int] = []
    remaining = db_bytes
    for level in range(num_levels - 1, -1, -1):
        if level == num_levels - 1:
            size = int(db_bytes * 0.9)
        else:
            size = max(1, sizes[0] // size_multiplier)
        sizes.insert(0, size)
        remaining -= size
    return [
        LevelProfile(
            level=level,
            size_bytes=sizes[level],
            read_fraction=read_fractions[level],
            write_bytes_per_sec=total_write_rate_bps * write_shares[level],
        )
        for level in range(num_levels)
    ]


@dataclass(frozen=True)
class ConfigEvaluation:
    """Outcome of evaluating one five-letter configuration."""

    code: str
    avg_read_latency_usec: float
    cost_dollars: float
    cost_cents_per_gb: float
    provisioned_bytes_by_tech: dict[str, int]

    @property
    def is_homogeneous(self) -> bool:
        return len(set(self.code)) == 1


def evaluate_config(
    code: str,
    profiles: list[LevelProfile],
    *,
    lifetime_seconds: float = DEFAULT_LIFETIME_SECONDS,
) -> ConfigEvaluation:
    """Latency and cost of assigning ``code[i]`` to level i."""
    code = code.upper()
    if len(code) != len(profiles):
        raise ConfigError(f"code {code!r} does not match {len(profiles)} levels")
    specs: list[DeviceSpec] = []
    for letter in code:
        if letter not in SPECS_BY_CODE:
            raise ConfigError(f"unknown device code {letter!r}")
        specs.append(SPECS_BY_CODE[letter])

    avg_latency = sum(
        profile.read_fraction * spec.read_latency_usec
        for profile, spec in zip(profiles, specs)
    )

    # Aggregate each technology's data volume and write rate, then
    # provision it for the lifetime.
    data_by_tech: dict[str, int] = {}
    writes_by_tech: dict[str, float] = {}
    for profile, spec in zip(profiles, specs):
        data_by_tech[spec.name] = data_by_tech.get(spec.name, 0) + profile.size_bytes
        writes_by_tech[spec.name] = (
            writes_by_tech.get(spec.name, 0.0) + profile.write_bytes_per_sec
        )
    cost = 0.0
    provisioned: dict[str, int] = {}
    for name, data_bytes in data_by_tech.items():
        spec = next(s for s in specs if s.name == name)
        result = provision_capacity(
            spec, data_bytes, writes_by_tech[name], lifetime_seconds=lifetime_seconds
        )
        cost += result.cost_dollars
        provisioned[name] = result.provisioned_bytes

    db_bytes = sum(profile.size_bytes for profile in profiles)
    cents_per_gb = cost / (db_bytes / GIB) * 100.0
    return ConfigEvaluation(
        code=code,
        avg_read_latency_usec=avg_latency,
        cost_dollars=cost,
        cost_cents_per_gb=cents_per_gb,
        provisioned_bytes_by_tech=provisioned,
    )


def enumerate_configs(
    profiles: list[LevelProfile] | None = None,
    *,
    letters: str = "NTQ",
    lifetime_seconds: float = DEFAULT_LIFETIME_SECONDS,
) -> list[ConfigEvaluation]:
    """Evaluate every assignment of ``letters`` to the levels (Fig. 4)."""
    profiles = profiles or default_level_profiles()
    evaluations = []
    for combo in itertools.product(letters, repeat=len(profiles)):
        evaluations.append(
            evaluate_config("".join(combo), profiles, lifetime_seconds=lifetime_seconds)
        )
    return evaluations


def pareto_frontier(evaluations: list[ConfigEvaluation]) -> list[ConfigEvaluation]:
    """Configs not dominated in (latency, cost), sorted by latency."""
    frontier = []
    for candidate in evaluations:
        dominated = any(
            other.avg_read_latency_usec <= candidate.avg_read_latency_usec
            and other.cost_dollars <= candidate.cost_dollars
            and (
                other.avg_read_latency_usec < candidate.avg_read_latency_usec
                or other.cost_dollars < candidate.cost_dollars
            )
            for other in evaluations
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda e: e.avg_read_latency_usec)


#: The four configurations Table 3 prices out.
TABLE3_CODES = ("QQQQQ", "NNNTQ", "TTTTT", "NNNNN")


def table3_costs(
    profiles: list[LevelProfile] | None = None,
    *,
    lifetime_seconds: float = DEFAULT_LIFETIME_SECONDS,
) -> dict[str, float]:
    """Storage cost (dollars) of the Table 3 configurations."""
    profiles = profiles or default_level_profiles()
    return {
        code: evaluate_config(code, profiles, lifetime_seconds=lifetime_seconds).cost_dollars
        for code in TABLE3_CODES
    }
