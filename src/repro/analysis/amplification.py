"""Read/write amplification accounting (Fig. 12).

Amplification factors relate device I/O to user I/O: write amplification
is (WAL + flush + compaction + migration writes) / user bytes written;
read amplification is device bytes read per user byte delivered. The
helpers take raw byte counters so they work on any system's stats.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOBreakdown:
    """Raw byte counters for one run."""

    user_write_bytes: int
    user_read_bytes: int
    wal_bytes: int = 0
    flush_bytes: int = 0
    compaction_read_bytes: int = 0
    compaction_write_bytes: int = 0
    migration_bytes: int = 0
    foreground_read_bytes: int = 0

    def __post_init__(self) -> None:
        for name in (
            "user_write_bytes",
            "user_read_bytes",
            "wal_bytes",
            "flush_bytes",
            "compaction_read_bytes",
            "compaction_write_bytes",
            "migration_bytes",
            "foreground_read_bytes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total_device_write_bytes(self) -> int:
        """All bytes programmed to storage on behalf of the workload."""
        return (
            self.wal_bytes
            + self.flush_bytes
            + self.compaction_write_bytes
            + self.migration_bytes
        )

    @property
    def total_device_read_bytes(self) -> int:
        """All bytes read from storage (queries + compaction + migration)."""
        return (
            self.foreground_read_bytes
            + self.compaction_read_bytes
            + self.migration_bytes
        )


def write_amplification(io: IOBreakdown) -> float:
    """Device writes per user byte written (0 when nothing was written)."""
    if io.user_write_bytes == 0:
        return 0.0
    return io.total_device_write_bytes / io.user_write_bytes


def read_amplification(io: IOBreakdown) -> float:
    """Device reads per user byte delivered (0 when nothing was read)."""
    if io.user_read_bytes == 0:
        return 0.0
    return io.total_device_read_bytes / io.user_read_bytes
