"""Analytic leveled-LSM sizing model.

§4.3 of the paper leans on the classical result that write amplification
is minimized when the ratio between consecutive level sizes is constant —
that is why the placer must respect level sizing rather than pile hot
data arbitrarily high. This module makes that math executable: steady-
state write amplification as a function of the multiplier and level
count, the optimal multiplier for a given data size, and how much extra
amplification a pin reserve introduces.

The standard model: each user byte is written once to the WAL, once per
flush, and then once per level it descends through; a leveled merge into
a level ``k`` times larger rewrites ~``k+1`` bytes per byte pushed down,
so WA ≈ 2 + Σ_levels (k + 1) in the worst case and ≈ 2 + levels * (k+1)/2
on average (output levels are half-full on average).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


def levels_required(db_bytes: int, level1_bytes: int, multiplier: int) -> int:
    """How many levels (L1..Ln) a database of ``db_bytes`` needs."""
    if db_bytes <= 0 or level1_bytes <= 0:
        raise ConfigError("sizes must be positive")
    if multiplier < 2:
        raise ConfigError("multiplier must be >= 2")
    levels = 1
    capacity = level1_bytes
    while capacity < db_bytes:
        levels += 1
        capacity += level1_bytes * multiplier ** (levels - 1)
    return levels


def write_amplification_estimate(
    levels: int,
    multiplier: int,
    *,
    wal: bool = True,
    merge_fullness: float = 0.5,
) -> float:
    """Steady-state WA of a leveled LSM.

    ``merge_fullness`` is the expected fill of the overlap a pushed-down
    file merges with (0.5 = levels half full on average; 1.0 = the
    classical worst case).
    """
    if levels < 1:
        raise ConfigError("levels must be >= 1")
    if multiplier < 2:
        raise ConfigError("multiplier must be >= 2")
    if not 0.0 <= merge_fullness <= 1.0:
        raise ConfigError("merge_fullness must be in [0, 1]")
    base = (1.0 if wal else 0.0) + 1.0  # WAL + flush
    per_level = 1.0 + multiplier * merge_fullness
    return base + levels * per_level


def optimal_multiplier(db_bytes: int, level1_bytes: int, *, max_multiplier: int = 64) -> int:
    """The multiplier minimizing estimated WA for a given data size.

    Larger multipliers need fewer levels but pay more per merge; the
    classical optimum sits near ``e`` times the per-level cost balance —
    here found by direct search, which also respects integer levels.
    """
    best_multiplier, best_wa = 2, math.inf
    for multiplier in range(2, max_multiplier + 1):
        levels = levels_required(db_bytes, level1_bytes, multiplier)
        wa = write_amplification_estimate(levels, multiplier)
        if wa < best_wa:
            best_multiplier, best_wa = multiplier, wa
    return best_multiplier


@dataclass(frozen=True)
class PinReserveImpact:
    """Effect of reserving level capacity for pinned data."""

    reserve_fraction: float
    effective_multiplier: float
    write_amplification: float
    baseline_write_amplification: float

    @property
    def overhead_fraction(self) -> float:
        """Relative WA increase the reserve costs."""
        if self.baseline_write_amplification == 0:
            return 0.0
        return (
            self.write_amplification / self.baseline_write_amplification - 1.0
        )


def pin_reserve_impact(
    levels: int,
    multiplier: int,
    reserve_fraction: float,
) -> PinReserveImpact:
    """Estimate the WA cost of a pin reserve (DESIGN.md's knob).

    Reserving a fraction ``r`` of each level for pinned data shrinks the
    capacity available to transient data to ``(1 - r/(1+r))`` of target,
    which behaves like a slightly smaller effective multiplier — the
    quantitative form of the paper's warning that deviating from the
    sizing rule increases write amplification.
    """
    if not 0.0 <= reserve_fraction < 1.0:
        raise ConfigError("reserve_fraction must be in [0, 1)")
    baseline = write_amplification_estimate(levels, multiplier)
    effective = multiplier * (1.0 + reserve_fraction)
    adjusted = write_amplification_estimate(levels, multiplier, merge_fullness=0.5 * (1.0 + reserve_fraction))
    return PinReserveImpact(
        reserve_fraction=reserve_fraction,
        effective_multiplier=effective,
        write_amplification=adjusted,
        baseline_write_amplification=baseline,
    )
